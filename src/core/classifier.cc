#include "core/classifier.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>

#include "obs/trace.h"
#include "tensor/serialize.h"
#include "util/fs.h"
#include "util/logging.h"

namespace ba::core {

EmbeddingScaler EmbeddingScaler::Fit(
    const std::vector<EmbeddingSequence>& sequences) {
  BA_CHECK(!sequences.empty());
  const int64_t dim = sequences[0].embeddings.dim(1);
  EmbeddingScaler s;
  s.mean.assign(static_cast<size_t>(dim), 0.0f);
  s.stddev.assign(static_cast<size_t>(dim), 1.0f);
  int64_t rows = 0;
  std::vector<double> sum(static_cast<size_t>(dim), 0.0);
  std::vector<double> sq(static_cast<size_t>(dim), 0.0);
  for (const auto& seq : sequences) {
    for (int64_t r = 0; r < seq.embeddings.dim(0); ++r) {
      for (int64_t c = 0; c < dim; ++c) {
        const double v = seq.embeddings.at(r, c);
        sum[static_cast<size_t>(c)] += v;
        sq[static_cast<size_t>(c)] += v * v;
      }
      ++rows;
    }
  }
  for (int64_t c = 0; c < dim; ++c) {
    const double m = sum[static_cast<size_t>(c)] / static_cast<double>(rows);
    const double var =
        sq[static_cast<size_t>(c)] / static_cast<double>(rows) - m * m;
    s.mean[static_cast<size_t>(c)] = static_cast<float>(m);
    s.stddev[static_cast<size_t>(c)] =
        static_cast<float>(std::sqrt(std::max(var, 1e-12)));
  }
  return s;
}

void EmbeddingScaler::Apply(std::vector<EmbeddingSequence>* sequences) const {
  for (auto& seq : *sequences) {
    const int64_t dim = seq.embeddings.dim(1);
    BA_CHECK_EQ(dim, static_cast<int64_t>(mean.size()));
    for (int64_t r = 0; r < seq.embeddings.dim(0); ++r) {
      for (int64_t c = 0; c < dim; ++c) {
        seq.embeddings.at(r, c) =
            (seq.embeddings.at(r, c) - mean[static_cast<size_t>(c)]) /
            stddev[static_cast<size_t>(c)];
      }
    }
  }
}

Status BaClassifier::Options::Validate() const {
  BA_RETURN_NOT_OK(dataset.Validate());
  BA_RETURN_NOT_OK(graph_model.Validate());
  BA_RETURN_NOT_OK(aggregator.Validate());
  if (dataset.k_hops != graph_model.k_hops) {
    return Status::InvalidArgument(
        "dataset.k_hops (" + std::to_string(dataset.k_hops) +
        ") != graph_model.k_hops (" + std::to_string(graph_model.k_hops) +
        "): the GFN input width is fixed by the dataset's propagation "
        "depth");
  }
  return Status::OK();
}

Result<std::unique_ptr<BaClassifier>> BaClassifier::Create(
    const Options& options) {
  BA_RETURN_NOT_OK(options.Validate());
  return std::make_unique<BaClassifier>(options);
}

BaClassifier::BaClassifier(const Options& options) : options_(options) {
  // The two stages must agree on k_hops and embedding width.
  options_.graph_model.k_hops = options_.dataset.k_hops;
  options_.aggregator.embed_dim = options_.graph_model.embed_dim;
  options_.aggregator.num_classes = options_.graph_model.num_classes;
}

Status BaClassifier::BuildSamples(
    const chain::Ledger& ledger,
    const std::vector<datagen::LabeledAddress>& addresses,
    std::vector<AddressSample>* out) const {
  BA_RETURN_NOT_OK(options_.dataset.Validate());
  GraphDatasetBuilder builder(options_.dataset);
  *out = builder.Build(ledger, addresses);
  return Status::OK();
}

Status BaClassifier::Train(
    const chain::Ledger& ledger,
    const std::vector<datagen::LabeledAddress>& train) {
  std::vector<AddressSample> samples;
  BA_RETURN_NOT_OK(BuildSamples(ledger, train, &samples));
  return TrainOnSamples(samples);
}

Status BaClassifier::TrainOnSamples(
    const std::vector<AddressSample>& train) {
  if (train.empty()) {
    return Status::InvalidArgument("no training samples with history");
  }
  BA_TRACE_SPAN("core.classifier.train");
  graph_model_ = std::make_unique<GraphModel>(options_.graph_model);
  BA_RETURN_NOT_OK(graph_model_->Train(train));

  std::vector<EmbeddingSequence> sequences;
  {
    BA_TRACE_SPAN("core.classifier.embed");
    sequences = BuildEmbeddingSequences(*graph_model_, train);
    scaler_ = EmbeddingScaler::Fit(sequences);
    scaler_.Apply(&sequences);
  }

  aggregator_ = std::make_unique<AggregatorModel>(options_.aggregator);
  aggregator_->Train(sequences);
  trained_ = true;
  return Status::OK();
}

Status BaClassifier::Quantize(const std::vector<AddressSample>& calibration) {
  if (!trained_) {
    return Status::FailedPrecondition(
        "cannot quantize an untrained classifier");
  }
  BA_TRACE_SPAN("core.quant.calibrate");
  return graph_model_->Quantize(calibration);
}

bool BaClassifier::quantized() const {
  return trained_ && graph_model_->quantized();
}

Status BaClassifier::PredictSample(const AddressSample& sample,
                                   int* out) const {
  if (!trained_) {
    return Status::FailedPrecondition(
        "cannot predict with an untrained classifier");
  }
  if (sample.tensors.empty()) {
    *out = 0;
    return Status::OK();
  }
  std::vector<EmbeddingSequence> seq =
      BuildEmbeddingSequences(*graph_model_, {sample});
  scaler_.Apply(&seq);
  *out = aggregator_->Predict(seq[0].embeddings);
  return Status::OK();
}

Status BaClassifier::Predict(
    const chain::Ledger& ledger,
    const std::vector<datagen::LabeledAddress>& addresses,
    std::vector<int>* out) const {
  if (!trained_) {
    return Status::FailedPrecondition(
        "cannot predict with an untrained classifier");
  }
  out->clear();
  out->reserve(addresses.size());
  GraphDatasetBuilder builder(options_.dataset);
  for (const auto& a : addresses) {
    const auto samples = builder.Build(ledger, {a});
    int predicted = 0;
    if (!samples.empty()) {
      BA_RETURN_NOT_OK(PredictSample(samples[0], &predicted));
    }
    out->push_back(predicted);
  }
  return Status::OK();
}

Status BaClassifier::Evaluate(const chain::Ledger& ledger,
                              const std::vector<datagen::LabeledAddress>& test,
                              metrics::ConfusionMatrix* out) const {
  std::vector<AddressSample> samples;
  BA_RETURN_NOT_OK(BuildSamples(ledger, test, &samples));
  return EvaluateSamples(samples, out);
}

Status BaClassifier::EvaluateSamples(const std::vector<AddressSample>& test,
                                     metrics::ConfusionMatrix* out) const {
  if (!trained_) {
    return Status::FailedPrecondition(
        "cannot evaluate an untrained classifier");
  }
  metrics::ConfusionMatrix cm(options_.graph_model.num_classes);
  std::vector<EmbeddingSequence> sequences =
      BuildEmbeddingSequences(*graph_model_, test);
  scaler_.Apply(&sequences);
  for (size_t i = 0; i < test.size(); ++i) {
    cm.Add(test[i].label, aggregator_->Predict(sequences[i].embeddings));
  }
  *out = std::move(cm);
  return Status::OK();
}

// -- Options codec ----------------------------------------------------------

namespace {

std::string FormatFloat(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void AddKv(std::string* s, const char* key, const std::string& value) {
  s->append(key);
  s->push_back('=');
  s->append(value);
  s->push_back('\n');
}

void AddKv(std::string* s, const char* key, int64_t value) {
  AddKv(s, key, std::to_string(value));
}

void AddKv(std::string* s, const char* key, uint64_t value) {
  AddKv(s, key, std::to_string(value));
}

void AddKv(std::string* s, const char* key, bool value) {
  AddKv(s, key, std::string(value ? "1" : "0"));
}

void AddKvF(std::string* s, const char* key, double value) {
  AddKv(s, key, FormatFloat(value));
}

/// One settable field of the options block: parses `value` into its
/// destination, or explains why it cannot.
using FieldParser = std::function<Status(const std::string& value)>;

Status ParseInt(const std::string& key, const std::string& value,
                int64_t* out) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("options field " + key +
                                   ": not an integer: '" + value + "'");
  }
  *out = v;
  return Status::OK();
}

Status ParseU64(const std::string& key, const std::string& value,
                uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("options field " + key +
                                   ": not an unsigned integer: '" + value +
                                   "'");
  }
  *out = v;
  return Status::OK();
}

Status ParseDouble(const std::string& key, const std::string& value,
                   double* out) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(value.c_str(), &end);
  if (errno != 0 || end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("options field " + key +
                                   ": not a number: '" + value + "'");
  }
  *out = v;
  return Status::OK();
}

template <typename T>
FieldParser IntField(const std::string& key, T* dst) {
  return [key, dst](const std::string& value) {
    int64_t v = 0;
    BA_RETURN_NOT_OK(ParseInt(key, value, &v));
    *dst = static_cast<T>(v);
    return Status::OK();
  };
}

FieldParser U64Field(const std::string& key, uint64_t* dst) {
  return [key, dst](const std::string& value) {
    return ParseU64(key, value, dst);
  };
}

FieldParser BoolField(const std::string& key, bool* dst) {
  return [key, dst](const std::string& value) {
    if (value != "0" && value != "1") {
      return Status::InvalidArgument("options field " + key +
                                     ": not a bool (0/1): '" + value + "'");
    }
    *dst = value == "1";
    return Status::OK();
  };
}

template <typename T>
FieldParser FloatField(const std::string& key, T* dst) {
  return [key, dst](const std::string& value) {
    double v = 0.0;
    BA_RETURN_NOT_OK(ParseDouble(key, value, &v));
    *dst = static_cast<T>(v);
    return Status::OK();
  };
}

template <typename E>
FieldParser EnumField(const std::string& key, E* dst, int max_value) {
  return [key, dst, max_value](const std::string& value) {
    int64_t v = 0;
    BA_RETURN_NOT_OK(ParseInt(key, value, &v));
    if (v < 0 || v > max_value) {
      return Status::InvalidArgument("options field " + key +
                                     ": enum value out of range: " +
                                     std::to_string(v));
    }
    *dst = static_cast<E>(v);
    return Status::OK();
  };
}

std::map<std::string, FieldParser> OptionFields(BaClassifier::Options* o) {
  std::map<std::string, FieldParser> f;
  auto& c = o->dataset.construction;
  f["dataset.construction.slice_size"] =
      IntField("dataset.construction.slice_size", &c.slice_size);
  f["dataset.construction.similarity_threshold"] = FloatField(
      "dataset.construction.similarity_threshold", &c.similarity_threshold);
  f["dataset.construction.sigma"] =
      IntField("dataset.construction.sigma", &c.sigma);
  f["dataset.construction.max_txs_per_address"] = IntField(
      "dataset.construction.max_txs_per_address", &c.max_txs_per_address);
  f["dataset.construction.enable_single_compression"] =
      BoolField("dataset.construction.enable_single_compression",
                &c.enable_single_compression);
  f["dataset.construction.enable_multi_compression"] =
      BoolField("dataset.construction.enable_multi_compression",
                &c.enable_multi_compression);
  f["dataset.construction.enable_augmentation"] = BoolField(
      "dataset.construction.enable_augmentation", &c.enable_augmentation);
  f["dataset.construction.use_sparse_similarity"] = BoolField(
      "dataset.construction.use_sparse_similarity", &c.use_sparse_similarity);
  f["dataset.k_hops"] = IntField("dataset.k_hops", &o->dataset.k_hops);
  f["dataset.num_threads"] =
      IntField("dataset.num_threads", &o->dataset.num_threads);

  auto& g = o->graph_model;
  f["graph_model.encoder"] = EnumField(
      "graph_model.encoder", &g.encoder,
      static_cast<int>(GraphEncoderKind::kGat));
  f["graph_model.num_classes"] =
      IntField("graph_model.num_classes", &g.num_classes);
  f["graph_model.k_hops"] = IntField("graph_model.k_hops", &g.k_hops);
  f["graph_model.hidden_dim"] =
      IntField("graph_model.hidden_dim", &g.hidden_dim);
  f["graph_model.embed_dim"] = IntField("graph_model.embed_dim", &g.embed_dim);
  f["graph_model.diffpool_clusters"] =
      IntField("graph_model.diffpool_clusters", &g.diffpool_clusters);
  f["graph_model.dropout"] = FloatField("graph_model.dropout", &g.dropout);
  f["graph_model.epochs"] = IntField("graph_model.epochs", &g.epochs);
  f["graph_model.batch_size"] =
      IntField("graph_model.batch_size", &g.batch_size);
  f["graph_model.learning_rate"] =
      FloatField("graph_model.learning_rate", &g.learning_rate);
  f["graph_model.weight_decay"] =
      FloatField("graph_model.weight_decay", &g.weight_decay);
  f["graph_model.seed"] = U64Field("graph_model.seed", &g.seed);
  f["graph_model.checkpoint_every"] =
      IntField("graph_model.checkpoint_every", &g.checkpoint_every);

  auto& a = o->aggregator;
  f["aggregator.kind"] = EnumField(
      "aggregator.kind", &a.kind,
      static_cast<int>(AggregatorKind::kSelfAttention));
  f["aggregator.embed_dim"] = IntField("aggregator.embed_dim", &a.embed_dim);
  f["aggregator.hidden_dim"] =
      IntField("aggregator.hidden_dim", &a.hidden_dim);
  f["aggregator.mlp_hidden"] =
      IntField("aggregator.mlp_hidden", &a.mlp_hidden);
  f["aggregator.num_classes"] =
      IntField("aggregator.num_classes", &a.num_classes);
  f["aggregator.epochs"] = IntField("aggregator.epochs", &a.epochs);
  f["aggregator.batch_size"] =
      IntField("aggregator.batch_size", &a.batch_size);
  f["aggregator.learning_rate"] =
      FloatField("aggregator.learning_rate", &a.learning_rate);
  f["aggregator.seed"] = U64Field("aggregator.seed", &a.seed);

  f["seed"] = U64Field("seed", &o->seed);
  return f;
}

}  // namespace

std::string EncodeClassifierOptions(const BaClassifier::Options& o) {
  std::string s;
  const auto& c = o.dataset.construction;
  AddKv(&s, "dataset.construction.slice_size",
        static_cast<int64_t>(c.slice_size));
  AddKvF(&s, "dataset.construction.similarity_threshold",
         c.similarity_threshold);
  AddKv(&s, "dataset.construction.sigma", static_cast<int64_t>(c.sigma));
  AddKv(&s, "dataset.construction.max_txs_per_address",
        static_cast<int64_t>(c.max_txs_per_address));
  AddKv(&s, "dataset.construction.enable_single_compression",
        c.enable_single_compression);
  AddKv(&s, "dataset.construction.enable_multi_compression",
        c.enable_multi_compression);
  AddKv(&s, "dataset.construction.enable_augmentation",
        c.enable_augmentation);
  AddKv(&s, "dataset.construction.use_sparse_similarity",
        c.use_sparse_similarity);
  AddKv(&s, "dataset.k_hops", static_cast<int64_t>(o.dataset.k_hops));
  AddKv(&s, "dataset.num_threads",
        static_cast<int64_t>(o.dataset.num_threads));

  const auto& g = o.graph_model;
  AddKv(&s, "graph_model.encoder", static_cast<int64_t>(g.encoder));
  AddKv(&s, "graph_model.num_classes", static_cast<int64_t>(g.num_classes));
  AddKv(&s, "graph_model.k_hops", static_cast<int64_t>(g.k_hops));
  AddKv(&s, "graph_model.hidden_dim", static_cast<int64_t>(g.hidden_dim));
  AddKv(&s, "graph_model.embed_dim", static_cast<int64_t>(g.embed_dim));
  AddKv(&s, "graph_model.diffpool_clusters",
        static_cast<int64_t>(g.diffpool_clusters));
  AddKvF(&s, "graph_model.dropout", g.dropout);
  AddKv(&s, "graph_model.epochs", static_cast<int64_t>(g.epochs));
  AddKv(&s, "graph_model.batch_size", static_cast<int64_t>(g.batch_size));
  AddKvF(&s, "graph_model.learning_rate", g.learning_rate);
  AddKvF(&s, "graph_model.weight_decay", g.weight_decay);
  AddKv(&s, "graph_model.seed", g.seed);
  AddKv(&s, "graph_model.checkpoint_every",
        static_cast<int64_t>(g.checkpoint_every));

  const auto& a = o.aggregator;
  AddKv(&s, "aggregator.kind", static_cast<int64_t>(a.kind));
  AddKv(&s, "aggregator.embed_dim", static_cast<int64_t>(a.embed_dim));
  AddKv(&s, "aggregator.hidden_dim", static_cast<int64_t>(a.hidden_dim));
  AddKv(&s, "aggregator.mlp_hidden", static_cast<int64_t>(a.mlp_hidden));
  AddKv(&s, "aggregator.num_classes", static_cast<int64_t>(a.num_classes));
  AddKv(&s, "aggregator.epochs", static_cast<int64_t>(a.epochs));
  AddKv(&s, "aggregator.batch_size", static_cast<int64_t>(a.batch_size));
  AddKvF(&s, "aggregator.learning_rate", a.learning_rate);
  AddKv(&s, "aggregator.seed", a.seed);

  AddKv(&s, "seed", o.seed);
  return s;
}

Status DecodeClassifierOptions(const std::string& text,
                               BaClassifier::Options* options) {
  // Note `graph_model.checkpoint_dir` is deliberately absent from the
  // codec: it is a machine-local path, not part of the architecture.
  BaClassifier::Options decoded;
  auto fields = OptionFields(&decoded);
  size_t pos = 0;
  int line_no = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("options line " +
                                     std::to_string(line_no) +
                                     ": missing '=': '" + line + "'");
    }
    const std::string key = line.substr(0, eq);
    const auto it = fields.find(key);
    if (it == fields.end()) {
      return Status::InvalidArgument("options line " +
                                     std::to_string(line_no) +
                                     ": unknown field '" + key + "'");
    }
    BA_RETURN_NOT_OK(it->second(line.substr(eq + 1)));
  }
  *options = decoded;
  return Status::OK();
}

// -- BACL checkpoint container ----------------------------------------------

namespace {

constexpr char kContainerMagic[4] = {'B', 'A', 'C', 'L'};
constexpr char kLegacyMagic[4] = {'B', 'A', 'T', 'N'};
constexpr uint32_t kContainerVersion = 1;
/// Plausibility bound on the embedded sections; a corrupted length
/// field must never drive a huge allocation.
constexpr uint64_t kMaxSectionBytes = uint64_t{1} << 34;

/// The checkpointed tensor list: encoder weights, aggregator weights,
/// then the scaler's mean and stddev rows.
std::vector<tensor::Var> CheckpointTensors(const GraphModel& graph_model,
                                           const AggregatorModel& aggregator,
                                           tensor::Var scaler_mean,
                                           tensor::Var scaler_std) {
  std::vector<tensor::Var> all = graph_model.Parameters();
  const auto agg = aggregator.Parameters();
  all.insert(all.end(), agg.begin(), agg.end());
  all.push_back(std::move(scaler_mean));
  all.push_back(std::move(scaler_std));
  return all;
}

tensor::Var RowTensor(const std::vector<float>& values) {
  tensor::Tensor t({1, static_cast<int64_t>(values.size())});
  std::copy(values.begin(), values.end(), t.data());
  return tensor::Param(std::move(t));
}

struct ContainerParts {
  std::string options_text;
  std::string params_image;
};

/// Splits a BACL buffer into its options and parameter sections after
/// verifying magic, version and the outer CRC trailer.
Result<ContainerParts> ParseContainer(const std::string& buf,
                                      const std::string& path) {
  util::BufferReader r(buf);
  char magic[4];
  if (!r.ReadBytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kContainerMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("not a BACL classifier checkpoint: " +
                                   path);
  }
  uint32_t version = 0;
  if (!r.ReadPod(&version)) {
    return Status::InvalidArgument("truncated BACL header (no version): " +
                                   path);
  }
  if (version != kContainerVersion) {
    return Status::InvalidArgument("unsupported BACL version " +
                                   std::to_string(version) + ": " + path);
  }
  if (buf.size() < r.position() + sizeof(uint32_t)) {
    return Status::InvalidArgument("truncated BACL checkpoint (no crc32): " +
                                   path);
  }
  uint32_t stored = 0;
  std::memcpy(&stored, buf.data() + buf.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  const uint32_t computed =
      util::Crc32(buf.data(), buf.size() - sizeof(uint32_t));
  if (stored != computed) {
    return Status::InvalidArgument(
        "crc32 mismatch (stored " + std::to_string(stored) + ", computed " +
        std::to_string(computed) + "): corrupted checkpoint " + path);
  }
  r.Truncate(buf.size() - sizeof(uint32_t));

  ContainerParts parts;
  for (auto* section : {&parts.options_text, &parts.params_image}) {
    uint64_t len = 0;
    if (!r.ReadPod(&len)) {
      return Status::InvalidArgument("truncated BACL section header: " +
                                     path);
    }
    if (len > kMaxSectionBytes || len > r.remaining()) {
      return Status::InvalidArgument("implausible BACL section length " +
                                     std::to_string(len) + ": " + path);
    }
    section->resize(static_cast<size_t>(len));
    if (!r.ReadBytes(section->data(), static_cast<size_t>(len))) {
      return Status::InvalidArgument("truncated BACL section: " + path);
    }
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument(
        "trailing garbage (" + std::to_string(r.remaining()) +
        " bytes) after BACL body: " + path);
  }
  return parts;
}

}  // namespace

Status BaClassifier::Save(const std::string& path) const {
  if (!trained_) {
    return Status::FailedPrecondition("cannot save an untrained model");
  }
  const std::string options_text = EncodeClassifierOptions(options_);
  const std::string params_image = tensor::SerializeParameters(
      CheckpointTensors(*graph_model_, *aggregator_, RowTensor(scaler_.mean),
                        RowTensor(scaler_.stddev)));

  util::AtomicFileWriter out(path);
  BA_RETURN_NOT_OK(out.Open());
  BA_RETURN_NOT_OK(out.Write(kContainerMagic, sizeof(kContainerMagic)));
  BA_RETURN_NOT_OK(out.Write(&kContainerVersion, sizeof(kContainerVersion)));
  for (const std::string* section : {&options_text, &params_image}) {
    const uint64_t len = section->size();
    BA_RETURN_NOT_OK(out.Write(&len, sizeof(len)));
    BA_RETURN_NOT_OK(out.Append(*section));
  }
  const uint32_t crc = out.crc();
  BA_RETURN_NOT_OK(out.Write(&crc, sizeof(crc)));
  return out.Commit();
}

Status BaClassifier::InstallParameters(const std::string& image,
                                       const std::string& context) {
  graph_model_ = std::make_unique<GraphModel>(options_.graph_model);
  aggregator_ = std::make_unique<AggregatorModel>(options_.aggregator);
  const int64_t dim = options_.graph_model.embed_dim;
  scaler_.mean.assign(static_cast<size_t>(dim), 0.0f);
  scaler_.stddev.assign(static_cast<size_t>(dim), 1.0f);
  tensor::Var mean = RowTensor(scaler_.mean);
  tensor::Var stddev = RowTensor(scaler_.stddev);
  BA_RETURN_NOT_OK(tensor::DeserializeParameters(
      CheckpointTensors(*graph_model_, *aggregator_, mean, stddev), image,
      context));
  for (int64_t j = 0; j < dim; ++j) {
    scaler_.mean[static_cast<size_t>(j)] = mean->value.at(0, j);
    scaler_.stddev[static_cast<size_t>(j)] = stddev->value.at(0, j);
  }
  trained_ = true;
  return Status::OK();
}

Status BaClassifier::Load(const std::string& path) {
  BA_ASSIGN_OR_RETURN(const std::string buf, util::ReadFileToString(path));
  if (buf.size() >= sizeof(kLegacyMagic) &&
      std::memcmp(buf.data(), kLegacyMagic, sizeof(kLegacyMagic)) == 0) {
    // Legacy weights-only checkpoint: this classifier's Options define
    // the architecture; shapes are verified during the parse.
    return InstallParameters(buf, path);
  }
  BA_ASSIGN_OR_RETURN(const ContainerParts parts, ParseContainer(buf, path));
  return InstallParameters(parts.params_image, path);
}

Result<std::unique_ptr<BaClassifier>> BaClassifier::FromCheckpoint(
    const std::string& path) {
  BA_ASSIGN_OR_RETURN(const std::string buf, util::ReadFileToString(path));
  if (buf.size() >= sizeof(kLegacyMagic) &&
      std::memcmp(buf.data(), kLegacyMagic, sizeof(kLegacyMagic)) == 0) {
    return Status::InvalidArgument(
        "legacy weights-only checkpoint (no embedded options): " + path +
        "; construct a BaClassifier with matching Options and call Load()");
  }
  BA_ASSIGN_OR_RETURN(const ContainerParts parts, ParseContainer(buf, path));
  BaClassifier::Options options;
  BA_RETURN_NOT_OK(DecodeClassifierOptions(parts.options_text, &options));
  BA_RETURN_NOT_OK(options.Validate());
  auto clf = std::make_unique<BaClassifier>(options);
  BA_RETURN_NOT_OK(clf->InstallParameters(parts.params_image, path));
  return clf;
}

const GraphModel& BaClassifier::graph_model() const {
  BA_CHECK(trained_);
  return *graph_model_;
}

const AggregatorModel& BaClassifier::aggregator() const {
  BA_CHECK(trained_);
  return *aggregator_;
}

const EmbeddingScaler& BaClassifier::scaler() const {
  BA_CHECK(trained_);
  return scaler_;
}

}  // namespace ba::core
