#include "core/classifier.h"

#include <cmath>

#include "tensor/serialize.h"
#include "util/logging.h"

namespace ba::core {

EmbeddingScaler EmbeddingScaler::Fit(
    const std::vector<EmbeddingSequence>& sequences) {
  BA_CHECK(!sequences.empty());
  const int64_t dim = sequences[0].embeddings.dim(1);
  EmbeddingScaler s;
  s.mean.assign(static_cast<size_t>(dim), 0.0f);
  s.stddev.assign(static_cast<size_t>(dim), 1.0f);
  int64_t rows = 0;
  std::vector<double> sum(static_cast<size_t>(dim), 0.0);
  std::vector<double> sq(static_cast<size_t>(dim), 0.0);
  for (const auto& seq : sequences) {
    for (int64_t r = 0; r < seq.embeddings.dim(0); ++r) {
      for (int64_t c = 0; c < dim; ++c) {
        const double v = seq.embeddings.at(r, c);
        sum[static_cast<size_t>(c)] += v;
        sq[static_cast<size_t>(c)] += v * v;
      }
      ++rows;
    }
  }
  for (int64_t c = 0; c < dim; ++c) {
    const double m = sum[static_cast<size_t>(c)] / static_cast<double>(rows);
    const double var =
        sq[static_cast<size_t>(c)] / static_cast<double>(rows) - m * m;
    s.mean[static_cast<size_t>(c)] = static_cast<float>(m);
    s.stddev[static_cast<size_t>(c)] =
        static_cast<float>(std::sqrt(std::max(var, 1e-12)));
  }
  return s;
}

void EmbeddingScaler::Apply(std::vector<EmbeddingSequence>* sequences) const {
  for (auto& seq : *sequences) {
    const int64_t dim = seq.embeddings.dim(1);
    BA_CHECK_EQ(dim, static_cast<int64_t>(mean.size()));
    for (int64_t r = 0; r < seq.embeddings.dim(0); ++r) {
      for (int64_t c = 0; c < dim; ++c) {
        seq.embeddings.at(r, c) =
            (seq.embeddings.at(r, c) - mean[static_cast<size_t>(c)]) /
            stddev[static_cast<size_t>(c)];
      }
    }
  }
}

BaClassifier::BaClassifier(const Options& options) : options_(options) {
  // The two stages must agree on k_hops and embedding width.
  options_.graph_model.k_hops = options_.dataset.k_hops;
  options_.aggregator.embed_dim = options_.graph_model.embed_dim;
  options_.aggregator.num_classes = options_.graph_model.num_classes;
}

std::vector<AddressSample> BaClassifier::BuildSamples(
    const chain::Ledger& ledger,
    const std::vector<datagen::LabeledAddress>& addresses) const {
  GraphDatasetBuilder builder(options_.dataset);
  return builder.Build(ledger, addresses);
}

Status BaClassifier::Train(
    const chain::Ledger& ledger,
    const std::vector<datagen::LabeledAddress>& train) {
  return TrainOnSamples(BuildSamples(ledger, train));
}

Status BaClassifier::TrainOnSamples(
    const std::vector<AddressSample>& train) {
  if (train.empty()) {
    return Status::InvalidArgument("no training samples with history");
  }
  graph_model_ = std::make_unique<GraphModel>(options_.graph_model);
  BA_RETURN_NOT_OK(graph_model_->Train(train));

  std::vector<EmbeddingSequence> sequences =
      BuildEmbeddingSequences(*graph_model_, train);
  scaler_ = EmbeddingScaler::Fit(sequences);
  scaler_.Apply(&sequences);

  aggregator_ = std::make_unique<AggregatorModel>(options_.aggregator);
  aggregator_->Train(sequences);
  trained_ = true;
  return Status::OK();
}

int BaClassifier::PredictSample(const AddressSample& sample) const {
  BA_CHECK(trained_);
  if (sample.tensors.empty()) return 0;
  std::vector<EmbeddingSequence> seq =
      BuildEmbeddingSequences(*graph_model_, {sample});
  scaler_.Apply(&seq);
  return aggregator_->Predict(seq[0].embeddings);
}

std::vector<int> BaClassifier::Predict(
    const chain::Ledger& ledger,
    const std::vector<datagen::LabeledAddress>& addresses) const {
  BA_CHECK(trained_);
  std::vector<int> out;
  out.reserve(addresses.size());
  GraphDatasetBuilder builder(options_.dataset);
  for (const auto& a : addresses) {
    const auto samples = builder.Build(ledger, {a});
    out.push_back(samples.empty() ? 0 : PredictSample(samples[0]));
  }
  return out;
}

metrics::ConfusionMatrix BaClassifier::Evaluate(
    const chain::Ledger& ledger,
    const std::vector<datagen::LabeledAddress>& test) const {
  return EvaluateSamples(BuildSamples(ledger, test));
}

metrics::ConfusionMatrix BaClassifier::EvaluateSamples(
    const std::vector<AddressSample>& test) const {
  BA_CHECK(trained_);
  metrics::ConfusionMatrix cm(options_.graph_model.num_classes);
  std::vector<EmbeddingSequence> sequences =
      BuildEmbeddingSequences(*graph_model_, test);
  scaler_.Apply(&sequences);
  for (size_t i = 0; i < test.size(); ++i) {
    cm.Add(test[i].label, aggregator_->Predict(sequences[i].embeddings));
  }
  return cm;
}

namespace {

/// The checkpointed tensor list: encoder weights, aggregator weights,
/// then the scaler's mean and stddev rows.
std::vector<tensor::Var> CheckpointTensors(const GraphModel& graph_model,
                                           const AggregatorModel& aggregator,
                                           tensor::Var scaler_mean,
                                           tensor::Var scaler_std) {
  std::vector<tensor::Var> all = graph_model.Parameters();
  const auto agg = aggregator.Parameters();
  all.insert(all.end(), agg.begin(), agg.end());
  all.push_back(std::move(scaler_mean));
  all.push_back(std::move(scaler_std));
  return all;
}

tensor::Var RowTensor(const std::vector<float>& values) {
  tensor::Tensor t({1, static_cast<int64_t>(values.size())});
  std::copy(values.begin(), values.end(), t.data());
  return tensor::Param(std::move(t));
}

}  // namespace

Status BaClassifier::Save(const std::string& path) const {
  if (!trained_) {
    return Status::FailedPrecondition("cannot save an untrained model");
  }
  return tensor::SaveParameters(
      CheckpointTensors(*graph_model_, *aggregator_, RowTensor(scaler_.mean),
                        RowTensor(scaler_.stddev)),
      path);
}

Status BaClassifier::Load(const std::string& path) {
  graph_model_ = std::make_unique<GraphModel>(options_.graph_model);
  aggregator_ = std::make_unique<AggregatorModel>(options_.aggregator);
  const int64_t dim = options_.graph_model.embed_dim;
  scaler_.mean.assign(static_cast<size_t>(dim), 0.0f);
  scaler_.stddev.assign(static_cast<size_t>(dim), 1.0f);
  tensor::Var mean = RowTensor(scaler_.mean);
  tensor::Var stddev = RowTensor(scaler_.stddev);
  BA_RETURN_NOT_OK(tensor::LoadParameters(
      CheckpointTensors(*graph_model_, *aggregator_, mean, stddev), path));
  for (int64_t j = 0; j < dim; ++j) {
    scaler_.mean[static_cast<size_t>(j)] = mean->value.at(0, j);
    scaler_.stddev[static_cast<size_t>(j)] = stddev->value.at(0, j);
  }
  trained_ = true;
  return Status::OK();
}

const GraphModel& BaClassifier::graph_model() const {
  BA_CHECK(trained_);
  return *graph_model_;
}

const AggregatorModel& BaClassifier::aggregator() const {
  BA_CHECK(trained_);
  return *aggregator_;
}

}  // namespace ba::core
