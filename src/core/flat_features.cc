#include "core/flat_features.h"

#include <cmath>

#include "util/logging.h"

namespace ba::core {

namespace {

/// Accumulates [mean-in | target | mean-out] for one graph into `acc`
/// (size 3 * kNodeFeatureDim).
void AccumulateGraph(const AddressGraph& g, std::vector<double>* acc) {
  std::vector<double> in_mean(kNodeFeatureDim, 0.0);
  std::vector<double> out_mean(kNodeFeatureDim, 0.0);
  int64_t in_count = 0;
  int64_t out_count = 0;
  for (const auto& e : g.edges) {
    if (e.to == g.target_node) {
      const auto& f = g.nodes[static_cast<size_t>(e.from)].features;
      for (int j = 0; j < kNodeFeatureDim; ++j) {
        in_mean[static_cast<size_t>(j)] += f[static_cast<size_t>(j)];
      }
      ++in_count;
    }
    if (e.from == g.target_node) {
      const auto& f = g.nodes[static_cast<size_t>(e.to)].features;
      for (int j = 0; j < kNodeFeatureDim; ++j) {
        out_mean[static_cast<size_t>(j)] += f[static_cast<size_t>(j)];
      }
      ++out_count;
    }
  }
  const auto& target = g.nodes[static_cast<size_t>(g.target_node)].features;
  for (int j = 0; j < kNodeFeatureDim; ++j) {
    if (in_count > 0) {
      (*acc)[static_cast<size_t>(j)] +=
          in_mean[static_cast<size_t>(j)] / static_cast<double>(in_count);
    }
    (*acc)[static_cast<size_t>(kNodeFeatureDim + j)] +=
        target[static_cast<size_t>(j)];
    if (out_count > 0) {
      (*acc)[static_cast<size_t>(2 * kNodeFeatureDim + j)] +=
          out_mean[static_cast<size_t>(j)] / static_cast<double>(out_count);
    }
  }
}

}  // namespace

std::vector<float> FlatFeaturesForGraph(const AddressGraph& graph) {
  std::vector<double> acc(static_cast<size_t>(kFlatFeatureDim), 0.0);
  AccumulateGraph(graph, &acc);
  std::vector<float> out(static_cast<size_t>(kFlatFeatureDim), 0.0f);
  for (int64_t j = 0; j < 3 * kNodeFeatureDim; ++j) {
    out[static_cast<size_t>(j)] = static_cast<float>(acc[static_cast<size_t>(j)]);
  }
  out[static_cast<size_t>(kFlatFeatureDim - 2)] = static_cast<float>(
      std::log1p(static_cast<double>(graph.num_nodes())));
  out[static_cast<size_t>(kFlatFeatureDim - 1)] = static_cast<float>(
      std::log1p(static_cast<double>(graph.CountKind(NodeKind::kTransaction))));
  return out;
}

std::vector<float> FlatFeatures(const AddressSample& sample) {
  std::vector<double> acc(static_cast<size_t>(kFlatFeatureDim), 0.0);
  int64_t total_txs = 0;
  for (const auto& g : sample.graphs) {
    AccumulateGraph(g, &acc);
    total_txs += g.CountKind(NodeKind::kTransaction);
  }
  const double num_graphs =
      std::max<double>(1.0, static_cast<double>(sample.num_graphs()));
  std::vector<float> out(static_cast<size_t>(kFlatFeatureDim), 0.0f);
  for (int64_t j = 0; j < 3 * kNodeFeatureDim; ++j) {
    out[static_cast<size_t>(j)] =
        static_cast<float>(acc[static_cast<size_t>(j)] / num_graphs);
  }
  out[static_cast<size_t>(kFlatFeatureDim - 2)] =
      static_cast<float>(std::log1p(static_cast<double>(sample.num_graphs())));
  out[static_cast<size_t>(kFlatFeatureDim - 1)] =
      static_cast<float>(std::log1p(static_cast<double>(total_txs)));
  return out;
}

std::vector<std::vector<float>> FlatFeatureMatrix(
    const std::vector<AddressSample>& samples) {
  std::vector<std::vector<float>> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(FlatFeatures(s));
  return out;
}

}  // namespace ba::core
