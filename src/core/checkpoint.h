#pragma once

#include <string>
#include <vector>

#include "tensor/autograd.h"
#include "tensor/optimizer.h"
#include "util/rng.h"
#include "util/status.h"

/// \file checkpoint.h
/// \brief Crash-safe training checkpoints: model parameters + Adam
/// optimizer state (moments and step) + epoch counter + RNG state in
/// one atomically-written, CRC32-protected file ("BACK" format).
///
/// A training run killed after epoch k and resumed from its checkpoint
/// reproduces the uninterrupted run's parameters bit-exactly, because
/// the checkpoint captures *everything* the remaining epochs depend on:
/// weights, both Adam moment accumulators and the bias-correction step,
/// and the full RNG stream position (shuffles and dropout masks resume
/// where they left off).
///
/// Files are written through `util::AtomicFileWriter`, so a save killed
/// mid-flight leaves the previous checkpoint intact; loads verify the
/// CRC trailer and every shape, returning a descriptive non-OK Status
/// for truncation, bad magic, bit-flips or architecture mismatches.

namespace ba::core {

/// \brief In-memory image of one training checkpoint.
struct TrainingCheckpoint {
  int epoch = 0;       ///< completed epochs
  RngState rng;        ///< trainer RNG position
  int adam_step = 0;   ///< Adam bias-correction counter
  /// Parameter values, in `GraphModel::Parameters()` order.
  std::vector<tensor::Tensor> params;
  /// Sparse Adam moments: (parameter index, tensor) pairs.
  std::vector<std::pair<uint64_t, tensor::Tensor>> adam_m;
  std::vector<std::pair<uint64_t, tensor::Tensor>> adam_v;
};

/// \brief Captures the live training state into a checkpoint image.
TrainingCheckpoint CaptureTrainingCheckpoint(
    const std::vector<tensor::Var>& params, const tensor::Adam& optimizer,
    const Rng& rng, int epoch);

/// \brief Writes `ckpt` to `path` atomically with a CRC32 trailer.
Status SaveTrainingCheckpoint(const TrainingCheckpoint& ckpt,
                              const std::string& path);

/// \brief Reads a checkpoint written by SaveTrainingCheckpoint.
/// Returns a descriptive non-OK Status (never aborts) on truncation,
/// corruption or malformed content.
Result<TrainingCheckpoint> LoadTrainingCheckpoint(const std::string& path);

/// \brief Installs a loaded checkpoint into live training state.
/// Shapes are validated against `params`; on mismatch nothing is
/// modified and a descriptive error is returned.
Status RestoreTrainingCheckpoint(const TrainingCheckpoint& ckpt,
                                 const std::vector<tensor::Var>& params,
                                 tensor::Adam* optimizer, Rng* rng,
                                 int* epoch);

/// \brief Canonical checkpoint file inside a checkpoint directory.
std::string CheckpointPath(const std::string& checkpoint_dir);

}  // namespace ba::core
