#include "core/graph_builder.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "graph/sparse_matrix.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace ba::core {

namespace {

constexpr double kSatoshisPerCoin = 100'000'000.0;

double ToBtc(chain::Amount v) {
  return static_cast<double>(v) / kSatoshisPerCoin;
}

/// Rebuilds a graph after merging: `group_of[i]` >= 0 assigns node i to
/// a merge group; -1 keeps the node as-is. Each group becomes one node
/// of `merged_kind` whose features are the compressed SFE over all the
/// member edge values; parallel (node, node, side) edges are summed.
void ApplyMerges(AddressGraph* graph, const std::vector<int>& group_of,
                 int num_groups, NodeKind merged_kind) {
  if (num_groups == 0) return;
  const int old_n = graph->num_nodes();
  BA_CHECK_EQ(static_cast<int>(group_of.size()), old_n);

  // New index for every old node: kept nodes first (stable), then one
  // node per group.
  std::vector<int> new_index(static_cast<size_t>(old_n), -1);
  std::vector<GraphNode> new_nodes;
  for (int i = 0; i < old_n; ++i) {
    if (group_of[static_cast<size_t>(i)] < 0) {
      new_index[static_cast<size_t>(i)] =
          static_cast<int>(new_nodes.size());
      new_nodes.push_back(std::move(graph->nodes[static_cast<size_t>(i)]));
    }
  }
  const int first_group_node = static_cast<int>(new_nodes.size());
  std::vector<std::vector<double>> group_values(
      static_cast<size_t>(num_groups));
  std::vector<int> group_sizes(static_cast<size_t>(num_groups), 0);
  for (int i = 0; i < old_n; ++i) {
    const int g = group_of[static_cast<size_t>(i)];
    if (g >= 0) {
      new_index[static_cast<size_t>(i)] = first_group_node + g;
      group_sizes[static_cast<size_t>(g)] +=
          graph->nodes[static_cast<size_t>(i)].merged_count;
    }
  }

  // Collect member edge values per group (the SFE input of Eq. 2/7) and
  // remap edges, summing parallel ones.
  struct EdgeKey {
    int from;
    int to;
    bool is_input;
    bool operator==(const EdgeKey&) const = default;
  };
  struct EdgeKeyHash {
    size_t operator()(const EdgeKey& k) const {
      return std::hash<int64_t>()((static_cast<int64_t>(k.from) << 32) ^
                                  (static_cast<uint32_t>(k.to) << 1) ^
                                  (k.is_input ? 1 : 0));
    }
  };
  std::unordered_map<EdgeKey, double, EdgeKeyHash> merged_edges;
  for (const auto& e : graph->edges) {
    const int gf = group_of[static_cast<size_t>(e.from)];
    const int gt = group_of[static_cast<size_t>(e.to)];
    if (gf >= 0) group_values[static_cast<size_t>(gf)].push_back(e.value);
    if (gt >= 0) group_values[static_cast<size_t>(gt)].push_back(e.value);
    const EdgeKey key{new_index[static_cast<size_t>(e.from)],
                      new_index[static_cast<size_t>(e.to)], e.is_input};
    merged_edges[key] += e.value;
  }

  for (int g = 0; g < num_groups; ++g) {
    GraphNode node;
    node.kind = merged_kind;
    node.merged_count = group_sizes[static_cast<size_t>(g)];
    node.features =
        MakeNodeFeatures(merged_kind, group_values[static_cast<size_t>(g)]);
    new_nodes.push_back(std::move(node));
  }

  std::vector<GraphEdge> new_edges;
  new_edges.reserve(merged_edges.size());
  for (const auto& [key, value] : merged_edges) {
    new_edges.push_back({key.from, key.to, value, key.is_input});
  }
  std::sort(new_edges.begin(), new_edges.end(),
            [](const GraphEdge& a, const GraphEdge& b) {
              if (a.from != b.from) return a.from < b.from;
              if (a.to != b.to) return a.to < b.to;
              return a.is_input < b.is_input;
            });

  graph->target_node = new_index[static_cast<size_t>(graph->target_node)];
  BA_CHECK_GE(graph->target_node, 0);
  graph->nodes = std::move(new_nodes);
  graph->edges = std::move(new_edges);
}

}  // namespace

Status GraphConstructorOptions::Validate() const {
  if (slice_size <= 0) {
    return Status::InvalidArgument(
        "construction.slice_size must be positive (got " +
        std::to_string(slice_size) + ")");
  }
  if (similarity_threshold < 0.0) {
    return Status::InvalidArgument(
        "construction.similarity_threshold must be non-negative (got " +
        std::to_string(similarity_threshold) + ")");
  }
  if (sigma < 0) {
    return Status::InvalidArgument("construction.sigma must be >= 0 (got " +
                                   std::to_string(sigma) + ")");
  }
  if (max_txs_per_address <= 0) {
    return Status::InvalidArgument(
        "construction.max_txs_per_address must be positive (got " +
        std::to_string(max_txs_per_address) + ")");
  }
  return Status::OK();
}

GraphConstructor::GraphConstructor(GraphConstructorOptions options)
    : options_(options) {
  BA_CHECK_GT(options_.slice_size, 0);
  BA_CHECK_GE(options_.similarity_threshold, 0.0);
}

std::vector<AddressGraph> GraphConstructor::BuildGraphs(
    const chain::LedgerSnapshot& snapshot, chain::AddressId address) {
  return BuildGraphsFrom(snapshot, address, /*start_slice=*/0);
}

std::vector<AddressGraph> GraphConstructor::BuildGraphs(
    const chain::Ledger& ledger, chain::AddressId address) {
  return BuildGraphsFrom(ledger.Snapshot(), address, /*start_slice=*/0);
}

std::vector<AddressGraph> GraphConstructor::BuildGraphsFrom(
    const chain::Ledger& ledger, chain::AddressId address, int start_slice) {
  return BuildGraphsFrom(ledger.Snapshot(), address, start_slice);
}

std::vector<AddressGraph> GraphConstructor::BuildGraphsFrom(
    const chain::LedgerSnapshot& snapshot, chain::AddressId address,
    int start_slice) {
  BA_TRACE_SPAN("core.graph.build");
  Stopwatch watch;

  watch.Start();
  std::vector<AddressGraph> graphs;
  {
    BA_TRACE_SPAN("core.graph.extract");
    graphs = ExtractOriginalGraphs(snapshot, address, start_slice);
  }
  watch.Stop();
  timings_.extract_seconds += watch.ElapsedSeconds();

  if (options_.enable_single_compression) {
    BA_TRACE_SPAN("core.graph.compress_single");
    watch.Reset();
    watch.Start();
    for (auto& g : graphs) CompressSingleTransactionAddresses(&g);
    watch.Stop();
    timings_.single_compress_seconds += watch.ElapsedSeconds();
  }

  if (options_.enable_multi_compression) {
    BA_TRACE_SPAN("core.graph.compress_multi");
    watch.Reset();
    watch.Start();
    for (auto& g : graphs) CompressMultiTransactionAddresses(&g);
    watch.Stop();
    timings_.multi_compress_seconds += watch.ElapsedSeconds();
  }

  if (options_.enable_augmentation) {
    BA_TRACE_SPAN("core.graph.augment");
    watch.Reset();
    watch.Start();
    for (auto& g : graphs) AugmentStructure(&g);
    watch.Stop();
    timings_.augment_seconds += watch.ElapsedSeconds();
  }
  return graphs;
}

std::vector<AddressGraph> GraphConstructor::ExtractOriginalGraphs(
    const chain::LedgerSnapshot& snapshot, chain::AddressId address) const {
  return ExtractOriginalGraphs(snapshot, address, /*start_slice=*/0);
}

std::vector<AddressGraph> GraphConstructor::ExtractOriginalGraphs(
    const chain::Ledger& ledger, chain::AddressId address) const {
  return ExtractOriginalGraphs(ledger.Snapshot(), address, /*start_slice=*/0);
}

std::vector<AddressGraph> GraphConstructor::ExtractOriginalGraphs(
    const chain::Ledger& ledger, chain::AddressId address,
    int start_slice) const {
  return ExtractOriginalGraphs(ledger.Snapshot(), address, start_slice);
}

std::vector<AddressGraph> GraphConstructor::ExtractOriginalGraphs(
    const chain::LedgerSnapshot& snapshot, chain::AddressId address,
    int start_slice) const {
  const std::vector<chain::TxId> txs = snapshot.TransactionsOf(
      address, static_cast<size_t>(options_.max_txs_per_address));

  std::vector<AddressGraph> graphs;
  const int slice_size = options_.slice_size;
  const int num_slices =
      static_cast<int>((txs.size() + slice_size - 1) / slice_size);
  if (start_slice >= num_slices) return graphs;
  graphs.reserve(static_cast<size_t>(num_slices - start_slice));

  for (int s = start_slice; s < num_slices; ++s) {
    const size_t begin = static_cast<size_t>(s) * slice_size;
    const size_t end =
        std::min(txs.size(), begin + static_cast<size_t>(slice_size));

    AddressGraph g;
    g.target = address;
    g.slice_index = s;

    // Values incident to each node within this slice, used for the
    // node's SFE features; indexed by node id.
    std::unordered_map<chain::AddressId, int> addr_node;
    std::vector<std::vector<double>> node_values;

    auto address_node = [&](chain::AddressId a) {
      auto it = addr_node.find(a);
      if (it != addr_node.end()) return it->second;
      GraphNode node;
      node.kind = NodeKind::kAddress;
      node.address = a;
      const int idx = g.num_nodes();
      g.nodes.push_back(std::move(node));
      node_values.emplace_back();
      addr_node.emplace(a, idx);
      return idx;
    };

    // The target address is always node 0 of its graph.
    g.target_node = address_node(address);

    for (size_t t = begin; t < end; ++t) {
      const chain::Transaction& tx = snapshot.tx(txs[t]);
      GraphNode tx_node;
      tx_node.kind = NodeKind::kTransaction;
      tx_node.txid = tx.txid;
      const int tx_idx = g.num_nodes();
      g.nodes.push_back(std::move(tx_node));
      node_values.emplace_back();

      for (const auto& in : tx.inputs) {
        const int a_idx = address_node(in.address);
        const double v = ToBtc(in.value);
        g.edges.push_back({a_idx, tx_idx, v, /*is_input=*/true});
        node_values[static_cast<size_t>(a_idx)].push_back(v);
        node_values[static_cast<size_t>(tx_idx)].push_back(v);
      }
      for (const auto& out : tx.outputs) {
        const int a_idx = address_node(out.address);
        const double v = ToBtc(out.value);
        g.edges.push_back({tx_idx, a_idx, v, /*is_input=*/false});
        node_values[static_cast<size_t>(a_idx)].push_back(v);
        node_values[static_cast<size_t>(tx_idx)].push_back(v);
      }
    }

    {
      BA_TRACE_SPAN("core.sfe");
      for (int i = 0; i < g.num_nodes(); ++i) {
        GraphNode& node = g.nodes[static_cast<size_t>(i)];
        node.features =
            MakeNodeFeatures(node.kind, node_values[static_cast<size_t>(i)]);
      }
    }
    g.nodes[static_cast<size_t>(g.target_node)]
        .features[static_cast<size_t>(kTargetFlagIndex)] = 1.0;
    graphs.push_back(std::move(g));
  }
  return graphs;
}

void GraphConstructor::CompressSingleTransactionAddresses(
    AddressGraph* graph) const {
  const int n = graph->num_nodes();
  // Distinct transactions incident to each address node.
  std::vector<std::unordered_set<int>> txs_of(static_cast<size_t>(n));
  for (const auto& e : graph->edges) {
    const auto& from = graph->nodes[static_cast<size_t>(e.from)];
    if (from.kind == NodeKind::kAddress) {
      txs_of[static_cast<size_t>(e.from)].insert(e.to);
    }
    const auto& to = graph->nodes[static_cast<size_t>(e.to)];
    if (to.kind == NodeKind::kAddress) {
      txs_of[static_cast<size_t>(e.to)].insert(e.from);
    }
  }

  // Group single-transaction addresses by (transaction, side).
  // Key: tx_node * 2 + (is_input ? 1 : 0).
  std::unordered_map<int64_t, std::vector<int>> side_groups;
  std::vector<bool> is_input_side(static_cast<size_t>(n), false);
  for (const auto& e : graph->edges) {
    if (e.is_input) {
      const auto& from = graph->nodes[static_cast<size_t>(e.from)];
      if (from.kind == NodeKind::kAddress) {
        is_input_side[static_cast<size_t>(e.from)] = true;
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    const auto& node = graph->nodes[static_cast<size_t>(i)];
    if (node.kind != NodeKind::kAddress) continue;
    if (i == graph->target_node) continue;  // never merge the target
    if (txs_of[static_cast<size_t>(i)].size() != 1) continue;
    const int tx = *txs_of[static_cast<size_t>(i)].begin();
    const int64_t key =
        static_cast<int64_t>(tx) * 2 +
        (is_input_side[static_cast<size_t>(i)] ? 1 : 0);
    side_groups[key].push_back(i);
  }

  std::vector<int> group_of(static_cast<size_t>(n), -1);
  int num_groups = 0;
  for (auto& [key, members] : side_groups) {
    if (members.size() < 2) continue;  // nothing to compress
    for (int m : members) group_of[static_cast<size_t>(m)] = num_groups;
    ++num_groups;
  }
  ApplyMerges(graph, group_of, num_groups, NodeKind::kSingleHyper);
}

void GraphConstructor::CompressMultiTransactionAddresses(
    AddressGraph* graph) const {
  const int n = graph->num_nodes();
  // Multi-transaction candidates: plain address nodes (not the target)
  // incident to >= 2 distinct transactions.
  std::vector<std::unordered_set<int>> txs_of(static_cast<size_t>(n));
  std::unordered_map<int, int> tx_col;  // tx node index -> column
  for (const auto& e : graph->edges) {
    int addr_side = -1;
    int tx_side = -1;
    if (graph->nodes[static_cast<size_t>(e.from)].kind ==
        NodeKind::kTransaction) {
      tx_side = e.from;
      addr_side = e.to;
    } else {
      addr_side = e.from;
      tx_side = e.to;
    }
    if (graph->nodes[static_cast<size_t>(tx_side)].kind !=
        NodeKind::kTransaction) {
      continue;  // hyper-hyper artifacts cannot occur, but stay safe
    }
    if (!tx_col.count(tx_side)) {
      const int col = static_cast<int>(tx_col.size());
      tx_col.emplace(tx_side, col);
    }
    txs_of[static_cast<size_t>(addr_side)].insert(tx_side);
  }

  std::vector<int> candidates;
  for (int i = 0; i < n; ++i) {
    const auto& node = graph->nodes[static_cast<size_t>(i)];
    if (node.kind != NodeKind::kAddress || i == graph->target_node) continue;
    if (txs_of[static_cast<size_t>(i)].size() >= 2) candidates.push_back(i);
  }
  if (candidates.size() < 2) return;

  // A ∈ {0,1}^(n_multi x d): candidate-transaction incidence (Eq. 3).
  const int64_t rows = static_cast<int64_t>(candidates.size());
  const int64_t cols = static_cast<int64_t>(tx_col.size());
  const double psi = options_.similarity_threshold;
  std::vector<std::vector<int>> similar(static_cast<size_t>(rows));

  if (options_.use_sparse_similarity) {
    // Optimized backend: exploit that A is a sparse incidence matrix,
    // so S = A·Aᵀ only materializes co-occurring pairs. Produces the
    // same similar-sets as the dense computation below.
    std::vector<graph::Triplet> triplets;
    for (int64_t r = 0; r < rows; ++r) {
      for (int tx :
           txs_of[static_cast<size_t>(candidates[static_cast<size_t>(r)])]) {
        triplets.push_back({r, tx_col.at(tx), 1.0f});
      }
    }
    const graph::SparseMatrix a =
        graph::SparseMatrix::FromTriplets(rows, cols, std::move(triplets));
    const graph::SparseMatrix s = a.Multiply(a.Transpose());
    // q_ij > 0  ⇔  s_ij / s_jj > Ψ (Eq. 4-6).
    for (int64_t i = 0; i < rows; ++i) {
      const auto idx = s.RowIndices(i);
      const auto vals = s.RowValues(i);
      for (size_t k = 0; k < idx.size(); ++k) {
        const int64_t j = idx[k];
        if (j == i) continue;
        const float degree_j = s.At(j, j);
        if (degree_j <= 0.0f) continue;
        if (static_cast<double>(vals[k]) / degree_j > psi) {
          similar[static_cast<size_t>(i)].push_back(static_cast<int>(j));
        }
      }
    }
  } else {
    // Paper-faithful dense computation (Eq. 3-5): materialize A, then
    // S = A·Aᵀ, M = S·D⁻¹ and Q = ReLU(M − Ψ·I) as dense matrices.
    // This all-pairs similarity is what makes Stage 3 the most
    // expensive construction stage in the paper's Table V.
    std::vector<float> a(static_cast<size_t>(rows * cols), 0.0f);
    for (int64_t r = 0; r < rows; ++r) {
      for (int tx :
           txs_of[static_cast<size_t>(candidates[static_cast<size_t>(r)])]) {
        a[static_cast<size_t>(r * cols + tx_col.at(tx))] = 1.0f;
      }
    }
    std::vector<float> s(static_cast<size_t>(rows * rows), 0.0f);
    for (int64_t i = 0; i < rows; ++i) {          // S = A·Aᵀ (Eq. 3)
      for (int64_t j = 0; j < rows; ++j) {
        float acc = 0.0f;
        const float* ai = a.data() + i * cols;
        const float* aj = a.data() + j * cols;
        for (int64_t k = 0; k < cols; ++k) acc += ai[k] * aj[k];
        s[static_cast<size_t>(i * rows + j)] = acc;
      }
    }
    std::vector<float> q(static_cast<size_t>(rows * rows), 0.0f);
    for (int64_t i = 0; i < rows; ++i) {
      for (int64_t j = 0; j < rows; ++j) {
        const float degree_j = s[static_cast<size_t>(j * rows + j)];
        // M = S·D⁻¹ (Eq. 4), Q = ReLU(M − Ψ·I) (Eq. 5).
        const float m = degree_j > 0.0f
                            ? s[static_cast<size_t>(i * rows + j)] / degree_j
                            : 0.0f;
        q[static_cast<size_t>(i * rows + j)] =
            std::max(0.0f, m - static_cast<float>(psi));
      }
    }
    for (int64_t i = 0; i < rows; ++i) {
      for (int64_t j = 0; j < rows; ++j) {
        if (i != j && q[static_cast<size_t>(i * rows + j)] > 0.0f) {
          similar[static_cast<size_t>(i)].push_back(static_cast<int>(j));
        }
      }
    }
  }

  // Greedy merge, most-connected seeds first (the paper retains nodes
  // whose similar set exceeds σ and folds g_i^sim into them).
  std::vector<int64_t> order(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int64_t x, int64_t y) {
    return similar[static_cast<size_t>(x)].size() >
           similar[static_cast<size_t>(y)].size();
  });

  std::vector<int> group_of(static_cast<size_t>(n), -1);
  std::vector<bool> consumed(static_cast<size_t>(rows), false);
  int num_groups = 0;
  for (int64_t i : order) {
    if (consumed[static_cast<size_t>(i)]) continue;
    const auto& sim = similar[static_cast<size_t>(i)];
    if (static_cast<int>(sim.size()) < options_.sigma) continue;
    std::vector<int> members{candidates[static_cast<size_t>(i)]};
    consumed[static_cast<size_t>(i)] = true;
    for (int j : sim) {
      if (consumed[static_cast<size_t>(j)]) continue;
      consumed[static_cast<size_t>(j)] = true;
      members.push_back(candidates[static_cast<size_t>(j)]);
    }
    if (members.size() < 2) continue;
    for (int m : members) group_of[static_cast<size_t>(m)] = num_groups;
    ++num_groups;
  }
  ApplyMerges(graph, group_of, num_groups, NodeKind::kMultiHyper);
}

void GraphConstructor::AugmentStructure(AddressGraph* graph) const {
  const graph::AdjacencyList adj = graph->ToAdjacency();
  const std::vector<double> degree = graph::DegreeCentrality(adj);
  const std::vector<double> closeness = graph::ClosenessCentrality(adj);
  const std::vector<double> betweenness = graph::BetweennessCentrality(adj);
  const std::vector<double> pagerank = graph::PageRank(adj);
  const double n = static_cast<double>(graph->num_nodes());
  const int base = kCentralityFeatureOffset;
  for (int i = 0; i < graph->num_nodes(); ++i) {
    auto& f = graph->nodes[static_cast<size_t>(i)].features;
    BA_CHECK_EQ(static_cast<int>(f.size()), kNodeFeatureDim);
    f[static_cast<size_t>(base + 0)] =
        std::log1p(degree[static_cast<size_t>(i)]);
    f[static_cast<size_t>(base + 1)] = closeness[static_cast<size_t>(i)];
    f[static_cast<size_t>(base + 2)] =
        std::log1p(betweenness[static_cast<size_t>(i)]);
    // PageRank rescaled to mean 1 before compression.
    f[static_cast<size_t>(base + 3)] =
        std::log1p(n * pagerank[static_cast<size_t>(i)]);
  }
}

}  // namespace ba::core
