#include "core/graph_model.h"

#include <algorithm>
#include <cmath>

#include "core/checkpoint.h"
#include "obs/trace.h"
#include "util/fs.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace ba::core {

const char* GraphEncoderName(GraphEncoderKind kind) {
  switch (kind) {
    case GraphEncoderKind::kGfn:
      return "GFN";
    case GraphEncoderKind::kGcn:
      return "GCN";
    case GraphEncoderKind::kDiffPool:
      return "DiffPool";
    case GraphEncoderKind::kGat:
      return "GAT";
  }
  return "Unknown";
}

Status GraphModelOptions::Validate() const {
  if (num_classes < 2) {
    return Status::InvalidArgument(
        "graph_model.num_classes must be >= 2 (got " +
        std::to_string(num_classes) + ")");
  }
  if (k_hops < 0) {
    return Status::InvalidArgument("graph_model.k_hops must be >= 0 (got " +
                                   std::to_string(k_hops) + ")");
  }
  if (hidden_dim <= 0 || embed_dim <= 0) {
    return Status::InvalidArgument(
        "graph_model dims must be positive (hidden_dim " +
        std::to_string(hidden_dim) + ", embed_dim " +
        std::to_string(embed_dim) + ")");
  }
  if (diffpool_clusters <= 0) {
    return Status::InvalidArgument(
        "graph_model.diffpool_clusters must be positive (got " +
        std::to_string(diffpool_clusters) + ")");
  }
  if (dropout < 0.0f || dropout >= 1.0f) {
    return Status::InvalidArgument(
        "graph_model.dropout must be in [0, 1) (got " +
        std::to_string(dropout) + ")");
  }
  if (epochs < 1 || batch_size < 1) {
    return Status::InvalidArgument(
        "graph_model.epochs and batch_size must be >= 1 (epochs " +
        std::to_string(epochs) + ", batch_size " +
        std::to_string(batch_size) + ")");
  }
  if (!(learning_rate > 0.0f)) {
    return Status::InvalidArgument(
        "graph_model.learning_rate must be positive (got " +
        std::to_string(learning_rate) + ")");
  }
  if (weight_decay < 0.0f) {
    return Status::InvalidArgument(
        "graph_model.weight_decay must be >= 0 (got " +
        std::to_string(weight_decay) + ")");
  }
  if (checkpoint_every < 1) {
    return Status::InvalidArgument(
        "graph_model.checkpoint_every must be >= 1 (got " +
        std::to_string(checkpoint_every) + ")");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument(
        "graph_model.num_threads must be >= 0 (got " +
        std::to_string(num_threads) + ")");
  }
  BA_RETURN_NOT_OK(checkpoint_retry.Validate());
  return Status::OK();
}

GraphModel::GraphModel(const GraphModelOptions& options)
    : options_(options), rng_(options.seed) {
  switch (options_.encoder) {
    case GraphEncoderKind::kGfn: {
      nn::GfnEncoder::Options o;
      o.input_dim = AugmentedDim(options_.k_hops);
      o.hidden_dim = options_.hidden_dim;
      o.embed_dim = options_.embed_dim;
      o.num_classes = options_.num_classes;
      o.dropout = options_.dropout;
      gfn_ = std::make_unique<nn::GfnEncoder>(o, &rng_);
      optimizer_ = std::make_unique<tensor::Adam>(
          gfn_->Parameters(), options_.learning_rate, 0.9f, 0.999f, 1e-8f,
          options_.weight_decay);
      break;
    }
    case GraphEncoderKind::kGcn: {
      nn::GcnEncoder::Options o;
      o.input_dim = kNodeFeatureDim;
      o.hidden_dim = options_.hidden_dim;
      o.embed_dim = options_.embed_dim;
      o.num_classes = options_.num_classes;
      gcn_ = std::make_unique<nn::GcnEncoder>(o, &rng_);
      optimizer_ = std::make_unique<tensor::Adam>(
          gcn_->Parameters(), options_.learning_rate, 0.9f, 0.999f, 1e-8f,
          options_.weight_decay);
      break;
    }
    case GraphEncoderKind::kDiffPool: {
      nn::DiffPoolEncoder::Options o;
      o.input_dim = kNodeFeatureDim;
      o.hidden_dim = options_.hidden_dim;
      o.embed_dim = options_.embed_dim;
      o.num_classes = options_.num_classes;
      o.num_clusters = options_.diffpool_clusters;
      diffpool_ = std::make_unique<nn::DiffPoolEncoder>(o, &rng_);
      optimizer_ = std::make_unique<tensor::Adam>(
          diffpool_->Parameters(), options_.learning_rate, 0.9f, 0.999f,
          1e-8f, options_.weight_decay);
      break;
    }
    case GraphEncoderKind::kGat: {
      nn::GatEncoder::Options o;
      o.input_dim = kNodeFeatureDim;
      o.hidden_dim = options_.hidden_dim;
      o.embed_dim = options_.embed_dim;
      o.num_classes = options_.num_classes;
      gat_ = std::make_unique<nn::GatEncoder>(o, &rng_);
      optimizer_ = std::make_unique<tensor::Adam>(
          gat_->Parameters(), options_.learning_rate, 0.9f, 0.999f, 1e-8f,
          options_.weight_decay);
      break;
    }
  }
}

int64_t GraphModel::NumParameters() const {
  if (gfn_) return gfn_->NumParameters();
  if (gcn_) return gcn_->NumParameters();
  if (gat_) return gat_->NumParameters();
  return diffpool_->NumParameters();
}

std::vector<tensor::Var> GraphModel::Parameters() const {
  if (gfn_) return gfn_->Parameters();
  if (gcn_) return gcn_->Parameters();
  if (gat_) return gat_->Parameters();
  return diffpool_->Parameters();
}

tensor::Var GraphModel::LogitsImpl(const GraphTensors& gt, bool training,
                                   Rng* rng) const {
  switch (options_.encoder) {
    case GraphEncoderKind::kGfn:
      return gfn_->Forward(tensor::Constant(gt.augmented),
                           training ? rng : nullptr, training);
    case GraphEncoderKind::kGcn:
      return gcn_->Forward(gt.norm_adj, tensor::Constant(gt.base_features));
    case GraphEncoderKind::kDiffPool:
      return diffpool_->Forward(gt.norm_adj,
                                tensor::Constant(gt.base_features));
    case GraphEncoderKind::kGat:
      return gat_->Forward(*gt.norm_adj,
                           tensor::Constant(gt.base_features));
  }
  BA_CHECK(false);
  return nullptr;
}

tensor::Var GraphModel::Logits(const GraphTensors& gt) const {
  return LogitsImpl(gt, /*training=*/false, /*rng=*/nullptr);
}

int GraphModel::PredictGraph(const GraphTensors& gt) const {
  const tensor::Var logits = Logits(gt);
  int best = 0;
  for (int c = 1; c < options_.num_classes; ++c) {
    if (logits->value.at(0, c) > logits->value.at(0, best)) best = c;
  }
  return best;
}

tensor::Tensor GraphModel::Embed(const GraphTensors& gt) const {
  switch (options_.encoder) {
    case GraphEncoderKind::kGfn:
      return gfn_->Embed(tensor::Constant(gt.augmented))->value;
    case GraphEncoderKind::kGcn:
      return gcn_->Embed(gt.norm_adj, tensor::Constant(gt.base_features))
          ->value;
    case GraphEncoderKind::kDiffPool:
      return diffpool_
          ->Embed(gt.norm_adj, tensor::Constant(gt.base_features))
          ->value;
    case GraphEncoderKind::kGat:
      return gat_->Embed(*gt.norm_adj, tensor::Constant(gt.base_features))
          ->value;
  }
  BA_CHECK(false);
  return tensor::Tensor();
}

Status GraphModel::Quantize(const std::vector<AddressSample>& calibration) {
  if (options_.encoder != GraphEncoderKind::kGfn) {
    return Status::Unimplemented(
        std::string("int8 quantization supports the GFN encoder only; "
                    "this model uses ") +
        GraphEncoderName(options_.encoder));
  }
  std::vector<const tensor::Tensor*> inputs;
  for (const AddressSample& s : calibration) {
    for (const GraphTensors& gt : s.tensors) inputs.push_back(&gt.augmented);
  }
  if (inputs.empty()) {
    return Status::InvalidArgument(
        "GraphModel::Quantize: calibration set has no graphs");
  }
  quantized_node_mlp_ =
      std::make_unique<nn::QuantizedMlp>(gfn_->node_mlp(), inputs);
  return Status::OK();
}

tensor::Tensor GraphModel::EmbedQuantized(const GraphTensors& gt) const {
  BA_CHECK(quantized_node_mlp_ != nullptr);
  const tensor::Tensor h = quantized_node_mlp_->Forward(gt.augmented);
  // SUM readout (Eq. 15) in fp32, exactly like the fp32 path.
  tensor::Tensor out({1, h.dim(1)});
  for (int64_t i = 0; i < h.dim(0); ++i) {
    for (int64_t j = 0; j < h.dim(1); ++j) out.at(0, j) += h.at(i, j);
  }
  return out;
}

Status GraphModel::Train(const std::vector<AddressSample>& train,
                         const std::vector<AddressSample>* eval,
                         std::vector<EpochStat>* history) {
  // Flatten to (graph, label) pairs — each slice is one example.
  struct Example {
    const GraphTensors* tensors;
    int label;
  };
  std::vector<Example> examples;
  for (const auto& s : train) {
    BA_CHECK_GE(s.label, 0);
    for (const auto& gt : s.tensors) examples.push_back({&gt, s.label});
  }
  BA_CHECK(!examples.empty());

  // Resume from an existing checkpoint when checkpointing is enabled.
  const bool checkpointing = !options_.checkpoint_dir.empty();
  const std::string ckpt_path = CheckpointPath(options_.checkpoint_dir);
  int start_epoch = 0;
  if (checkpointing && util::FileExists(ckpt_path)) {
    BA_ASSIGN_OR_RETURN(const TrainingCheckpoint ckpt,
                        LoadTrainingCheckpoint(ckpt_path));
    BA_RETURN_NOT_OK(RestoreTrainingCheckpoint(ckpt, Parameters(),
                                               optimizer_.get(), &rng_,
                                               &start_epoch));
  }

  // Lane setup for data-parallel batches. Lane 0 is this model; lanes
  // 1..T-1 are private replicas (their own tapes and Param nodes, so
  // concurrent Backward calls never touch shared autograd state).
  // Replica parameter values are re-synced from the master at every
  // batch start, so replicas carry no state of their own.
  size_t lanes = options_.num_threads == 0
                     ? util::SharedPoolThreads()
                     : static_cast<size_t>(options_.num_threads);
  lanes = std::max<size_t>(1, std::min(lanes, static_cast<size_t>(
                                                  options_.batch_size)));
  std::vector<std::unique_ptr<GraphModel>> replicas;
  std::vector<GraphModel*> lane_models{this};
  if (lanes > 1) {
    GraphModelOptions replica_options = options_;
    replica_options.checkpoint_dir.clear();
    replica_options.num_threads = 1;
    for (size_t l = 1; l < lanes; ++l) {
      replicas.push_back(std::make_unique<GraphModel>(replica_options));
      lane_models.push_back(replicas.back().get());
    }
  }
  std::vector<std::vector<tensor::Var>> lane_params;
  lane_params.reserve(lanes);
  for (GraphModel* m : lane_models) lane_params.push_back(m->Parameters());
  const std::vector<tensor::Var>& master_params = lane_params[0];
  const size_t num_params = master_params.size();
  // Only GFN consumes randomness in its training forward (dropout);
  // drawing seeds only when needed keeps the other encoders' RNG
  // streams — and therefore their existing checkpoints — unchanged.
  const bool uses_dropout_rng = options_.encoder == GraphEncoderKind::kGfn;

  // Each epoch visits examples through a fresh permutation drawn from
  // the RNG, so the visit order is a function of the RNG position at
  // the epoch boundary alone — the property that makes kill/resume
  // reproduce an uninterrupted run bit-exactly. Per-example dropout
  // seeds are likewise drawn from the trainer RNG *in visit order*
  // before each batch fans out, which keeps the RNG stream independent
  // of the lane count.
  std::vector<size_t> order(examples.size());
  obs::ScopedSpan train_span("core.train");
  train_span.AddArg("epochs", static_cast<double>(options_.epochs));
  train_span.AddArg("examples", static_cast<double>(examples.size()));
  train_span.AddArg("lanes", static_cast<double>(lanes));
  Stopwatch train_watch;
  for (int epoch = start_epoch; epoch < options_.epochs; ++epoch) {
    obs::ScopedSpan epoch_span("core.train.epoch");
    train_watch.Start();
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng_.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t i = 0;
    while (i < examples.size()) {
      const size_t batch_end = std::min(
          examples.size(), i + static_cast<size_t>(options_.batch_size));
      const size_t bs = batch_end - i;
      obs::ScopedSpan batch_span("core.train.batch");
      batch_span.AddArg("size", static_cast<double>(bs));
      batch_span.AddArg("lanes", static_cast<double>(lanes));

      std::vector<uint64_t> seeds(bs, 0);
      if (uses_dropout_rng) {
        for (size_t e = 0; e < bs; ++e) seeds[e] = rng_.Next();
      }
      // Sync replica weights to the master's current values.
      for (size_t l = 1; l < lanes; ++l) {
        for (size_t pi = 0; pi < num_params; ++pi) {
          lane_params[l][pi]->value = master_params[pi]->value;
        }
      }

      // Per-example result slots, written by exactly one lane each:
      // gradient snapshots (per param), per-param presence flags, and
      // the example's loss.
      std::vector<std::vector<tensor::Tensor>> grad_slots(bs);
      std::vector<std::vector<char>> grad_present(bs);
      std::vector<double> loss_slots(bs, 0.0);
      for (size_t e = 0; e < bs; ++e) {
        grad_slots[e].resize(num_params);
        grad_present[e].assign(num_params, 0);
      }

      const auto run_example = [&](size_t lane, size_t e) {
        GraphModel* m = lane_models[lane];
        const std::vector<tensor::Var>& params = lane_params[lane];
        m->optimizer_->ZeroGrad();
        Rng example_rng(seeds[e]);
        const Example& ex = examples[order[i + e]];
        const tensor::Var logits =
            m->LogitsImpl(*ex.tensors, /*training=*/true,
                          uses_dropout_rng ? &example_rng : nullptr);
        const tensor::Var loss =
            tensor::SoftmaxCrossEntropy(logits, std::vector<int>{ex.label});
        tensor::Backward(loss);
        loss_slots[e] = static_cast<double>(loss->value.item());
        for (size_t pi = 0; pi < num_params; ++pi) {
          if (!params[pi]->grad_ready) continue;
          grad_slots[e][pi] = params[pi]->grad;
          grad_present[e][pi] = 1;
        }
      };
      if (lanes == 1) {
        for (size_t e = 0; e < bs; ++e) run_example(0, e);
      } else {
        util::SharedPool().ParallelFor(lanes, [&](size_t lane) {
          for (size_t e = lane; e < bs; e += lanes) run_example(lane, e);
        });
      }

      // Fixed-order reduction: per parameter, example gradients are
      // summed in ascending example index — never in completion order —
      // then scaled by 1/batch. This is the determinism contract: the
      // result is a pure function of the batch, independent of lane
      // count and scheduling (DESIGN.md §7).
      for (size_t pi = 0; pi < num_params; ++pi) {
        const tensor::Var& p = master_params[pi];
        tensor::Tensor sum(p->value.shape());
        bool any = false;
        for (size_t e = 0; e < bs; ++e) {
          if (!grad_present[e][pi]) continue;
          sum.AddInPlace(grad_slots[e][pi]);
          any = true;
        }
        if (any) {
          sum.ScaleInPlace(1.0f / static_cast<float>(bs));
          p->grad = std::move(sum);
          p->grad_ready = true;
        } else {
          p->grad_ready = false;
        }
      }
      optimizer_->Step();
      for (size_t e = 0; e < bs; ++e) epoch_loss += loss_slots[e];
      i = batch_end;
    }
    train_watch.Stop();

    const double epoch_seconds = train_watch.ElapsedSeconds();
    const double mean_loss =
        epoch_loss / static_cast<double>(examples.size());
    BA_LOG(Info, "core.train")
        << "epoch " << (epoch + 1) << "/" << options_.epochs << " loss "
        << mean_loss << " (" << examples.size() << " examples, "
        << epoch_seconds << "s)";
    if (epoch_span.active()) {
      epoch_span.AddArg("epoch", static_cast<double>(epoch + 1));
      epoch_span.AddArg("loss", mean_loss);
      if (epoch_seconds > 0.0) {
        epoch_span.AddArg("examples_per_s",
                          static_cast<double>(examples.size()) /
                              epoch_seconds);
      }
      // The post-Step gradient L2 norm — an extra parameter sweep, so
      // computed only when the span is recorded.
      double grad_sq = 0.0;
      for (const tensor::Var& p : Parameters()) {
        if (!p->grad_ready) continue;
        const float* g = p->grad.data();
        for (int64_t j = 0; j < p->grad.numel(); ++j) {
          grad_sq += static_cast<double>(g[j]) * static_cast<double>(g[j]);
        }
      }
      epoch_span.AddArg("grad_norm", std::sqrt(grad_sq));
    }

    if (history != nullptr) {
      EpochStat stat;
      stat.epoch = epoch + 1;
      stat.seconds = train_watch.ElapsedSeconds();
      stat.train_loss = epoch_loss / static_cast<double>(examples.size());
      if (eval != nullptr) stat.eval_f1 = GraphLevelWeightedF1(*this, *eval);
      history->push_back(stat);
    }

    if (checkpointing) {
      const int done = epoch + 1;
      const int every = std::max(options_.checkpoint_every, 1);
      if (done % every == 0 || done == options_.epochs) {
        BA_RETURN_NOT_OK(util::RetryWithBackoff(
            options_.checkpoint_retry, "checkpoint save (epoch " +
                std::to_string(done) + ")",
            [&] {
              return SaveTrainingCheckpoint(
                  CaptureTrainingCheckpoint(Parameters(), *optimizer_, rng_,
                                            done),
                  ckpt_path);
            }));
      }
    }
  }
  return Status::OK();
}

metrics::ConfusionMatrix GraphModel::EvaluateGraphLevel(
    const std::vector<AddressSample>& samples) const {
  metrics::ConfusionMatrix cm(options_.num_classes);
  for (const auto& s : samples) {
    for (const auto& gt : s.tensors) {
      cm.Add(s.label, PredictGraph(gt));
    }
  }
  return cm;
}

double GraphLevelWeightedF1(const GraphModel& model,
                            const std::vector<AddressSample>& samples) {
  return model.EvaluateGraphLevel(samples).WeightedAverage().f1;
}

}  // namespace ba::core
