#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/aggregator.h"
#include "core/graph_dataset.h"
#include "core/graph_model.h"
#include "metrics/classification.h"

/// \file classifier.h
/// \brief BAClassifier — the paper's end-to-end system (Fig 2): address
/// graph construction → graph representation learning (GFN) → address
/// classification (LSTM+MLP). This facade is the library's primary
/// public entry point.
///
/// The facade is Status-first: every fallible operation (prediction on
/// an untrained model, invalid options, corrupt checkpoints) returns a
/// descriptive `Status` instead of aborting, so a serving process can
/// reject a bad request and keep running. (The legacy crash-on-misuse
/// value-returning overloads were deprecated shims and have been
/// removed.)
///
/// Typical use:
/// \code
///   ba::core::BaClassifier::Options opts;
///   BA_ASSIGN_OR_RETURN(auto clf, ba::core::BaClassifier::Create(opts));
///   BA_RETURN_NOT_OK(clf->Train(ledger, train_addresses));
///   metrics::ConfusionMatrix cm;
///   BA_RETURN_NOT_OK(clf->Evaluate(ledger, test_addresses, &cm));
///   BA_RETURN_NOT_OK(clf->Save("model.bacl"));
///   // Later, without reconstructing Options by hand:
///   BA_ASSIGN_OR_RETURN(auto served,
///                       ba::core::BaClassifier::FromCheckpoint("model.bacl"));
/// \endcode

namespace ba::core {

/// \brief Standardization of embedding sequences (fit on train, applied
/// everywhere) — keeps the SUM-readout magnitudes in the range the
/// LSTM gates operate in.
struct EmbeddingScaler {
  std::vector<float> mean;
  std::vector<float> stddev;

  static EmbeddingScaler Fit(const std::vector<EmbeddingSequence>& sequences);
  void Apply(std::vector<EmbeddingSequence>* sequences) const;
};

/// \brief End-to-end bitcoin address behavior classifier.
class BaClassifier {
 public:
  struct Options {
    GraphDatasetOptions dataset;
    GraphModelOptions graph_model;       ///< stage 2 (GFN by default)
    AggregatorOptions aggregator;        ///< stage 3 (LSTM+MLP by default)
    uint64_t seed = 1;

    /// \brief Validates every component and their cross-stage
    /// consistency: `dataset.k_hops` must equal `graph_model.k_hops`
    /// (the GFN input width depends on it). The aggregator's
    /// `embed_dim`/`num_classes` are derived from the graph model by
    /// construction and are not required to match beforehand.
    Status Validate() const;
  };

  /// \brief Validating factory: returns InvalidArgument (with the
  /// offending field named) instead of constructing a misconfigured
  /// classifier. Prefer this over the raw constructor.
  static Result<std::unique_ptr<BaClassifier>> Create(const Options& options);

  /// \brief Reconstructs a trained classifier from a checkpoint written
  /// by Save(): the serialized Options embedded in the artifact are
  /// decoded, validated, and used to rebuild the architecture before
  /// the weights are installed — no hand-maintained Options needed.
  /// Fails on legacy weights-only (BATN) checkpoints, corruption, or
  /// invalid embedded options.
  static Result<std::unique_ptr<BaClassifier>> FromCheckpoint(
      const std::string& path);

  /// Legacy constructor: silently normalizes derived fields (k_hops,
  /// aggregator dims) instead of validating. Prefer Create().
  explicit BaClassifier(const Options& options);

  /// \brief Trains both stages on the labeled train addresses: the
  /// graph encoder on individual graph slices, then the aggregator on
  /// the frozen encoder's embedding sequences.
  Status Train(const chain::Ledger& ledger,
               const std::vector<datagen::LabeledAddress>& train);

  /// Same, on pre-materialized samples (reuses dataset across models).
  Status TrainOnSamples(const std::vector<AddressSample>& train);

  /// \brief Materializes the graph samples of `addresses` (addresses
  /// whose history yields no graphs are dropped). Fails on invalid
  /// dataset options; never aborts.
  Status BuildSamples(const chain::Ledger& ledger,
                      const std::vector<datagen::LabeledAddress>& addresses,
                      std::vector<AddressSample>* out) const;

  /// \brief Post-training int8 quantization of the graph encoder's
  /// embed path, calibrated on `calibration` (typically the training
  /// samples) under a `core.quant.calibrate` trace span. After an OK
  /// return, serving layers may select the int8 path (see
  /// serve::InferenceEngineOptions::precision); the fp32 paths and all
  /// training/checkpointing are untouched. FailedPrecondition when
  /// untrained; Unimplemented for non-GFN encoders.
  Status Quantize(const std::vector<AddressSample>& calibration);

  /// True once Quantize() has succeeded on the trained model.
  bool quantized() const;

  /// \brief Predicted class per address into `*out` (order preserved;
  /// addresses with empty history predict class 0). FailedPrecondition
  /// when the model is untrained.
  Status Predict(const chain::Ledger& ledger,
                 const std::vector<datagen::LabeledAddress>& addresses,
                 std::vector<int>* out) const;

  /// \brief Predicted class of one pre-materialized sample.
  /// FailedPrecondition when the model is untrained.
  Status PredictSample(const AddressSample& sample, int* out) const;

  /// \brief Address-level confusion matrix on a labeled test set.
  /// FailedPrecondition when the model is untrained.
  Status Evaluate(const chain::Ledger& ledger,
                  const std::vector<datagen::LabeledAddress>& test,
                  metrics::ConfusionMatrix* out) const;

  /// Same, on pre-materialized samples.
  Status EvaluateSamples(const std::vector<AddressSample>& test,
                         metrics::ConfusionMatrix* out) const;

  /// \brief Saves the trained model to a "BACL" checkpoint: the
  /// serialized Options followed by the weights (encoder + aggregator +
  /// embedding scaler), atomically written and CRC32-protected.
  /// FromCheckpoint() restores it without any hand-built Options.
  Status Save(const std::string& path) const;

  /// \brief Loads a checkpoint written by Save into this classifier.
  /// The classifier must have been constructed with the same Options
  /// (architecture shapes are verified). Accepts both the BACL
  /// container and legacy weights-only BATN files. Marks the model
  /// trained.
  Status Load(const std::string& path);

  /// True once Train/TrainOnSamples/Load has succeeded.
  bool trained() const { return trained_; }

  /// The trained graph encoder (valid after Train).
  const GraphModel& graph_model() const;

  /// The trained aggregator (valid after Train).
  const AggregatorModel& aggregator() const;

  /// The embedding scaler fitted on the training set (valid after
  /// Train) — serving paths need it to normalize fresh embeddings
  /// exactly the way training did.
  const EmbeddingScaler& scaler() const;

  const Options& options() const { return options_; }

 private:
  Status InstallParameters(const std::string& image,
                           const std::string& context);

  Options options_;
  std::unique_ptr<GraphModel> graph_model_;
  std::unique_ptr<AggregatorModel> aggregator_;
  EmbeddingScaler scaler_;
  bool trained_ = false;
};

/// \brief Renders `options` as the line-oriented `key=value` text block
/// embedded in BACL checkpoints (stable across versions; exposed for
/// tests and tooling).
std::string EncodeClassifierOptions(const BaClassifier::Options& options);

/// \brief Parses a block produced by EncodeClassifierOptions. Unknown
/// keys and malformed values fail with a descriptive InvalidArgument;
/// missing keys keep their defaults.
Status DecodeClassifierOptions(const std::string& text,
                               BaClassifier::Options* options);

}  // namespace ba::core
