#pragma once

#include <memory>
#include <vector>

#include "core/aggregator.h"
#include "core/graph_dataset.h"
#include "core/graph_model.h"
#include "metrics/classification.h"

/// \file classifier.h
/// \brief BAClassifier — the paper's end-to-end system (Fig 2): address
/// graph construction → graph representation learning (GFN) → address
/// classification (LSTM+MLP). This facade is the library's primary
/// public entry point.
///
/// Typical use:
/// \code
///   ba::core::BaClassifier::Options opts;
///   ba::core::BaClassifier clf(opts);
///   BA_CHECK_OK(clf.Train(ledger, train_addresses));
///   auto cm = clf.Evaluate(ledger, test_addresses);
/// \endcode

namespace ba::core {

/// \brief Standardization of embedding sequences (fit on train, applied
/// everywhere) — keeps the SUM-readout magnitudes in the range the
/// LSTM gates operate in.
struct EmbeddingScaler {
  std::vector<float> mean;
  std::vector<float> stddev;

  static EmbeddingScaler Fit(const std::vector<EmbeddingSequence>& sequences);
  void Apply(std::vector<EmbeddingSequence>* sequences) const;
};

/// \brief End-to-end bitcoin address behavior classifier.
class BaClassifier {
 public:
  struct Options {
    GraphDatasetOptions dataset;
    GraphModelOptions graph_model;       ///< stage 2 (GFN by default)
    AggregatorOptions aggregator;        ///< stage 3 (LSTM+MLP by default)
    uint64_t seed = 1;
  };

  explicit BaClassifier(const Options& options);

  /// \brief Trains both stages on the labeled train addresses: the
  /// graph encoder on individual graph slices, then the aggregator on
  /// the frozen encoder's embedding sequences.
  Status Train(const chain::Ledger& ledger,
               const std::vector<datagen::LabeledAddress>& train);

  /// Same, on pre-materialized samples (reuses dataset across models).
  Status TrainOnSamples(const std::vector<AddressSample>& train);

  /// Predicted class per address (order preserved; addresses with empty
  /// history predict class 0).
  std::vector<int> Predict(
      const chain::Ledger& ledger,
      const std::vector<datagen::LabeledAddress>& addresses) const;

  /// Address-level confusion matrix on a labeled test set.
  metrics::ConfusionMatrix Evaluate(
      const chain::Ledger& ledger,
      const std::vector<datagen::LabeledAddress>& test) const;

  /// Same, on pre-materialized samples.
  metrics::ConfusionMatrix EvaluateSamples(
      const std::vector<AddressSample>& test) const;

  int PredictSample(const AddressSample& sample) const;

  /// \brief Saves the trained model (encoder + aggregator weights and
  /// the embedding scaler) to a binary checkpoint.
  Status Save(const std::string& path) const;

  /// \brief Loads a checkpoint written by Save into this classifier.
  /// The classifier must have been constructed with the same Options
  /// (architecture shapes are verified). Marks the model trained.
  Status Load(const std::string& path);

  /// The trained graph encoder (valid after Train).
  const GraphModel& graph_model() const;

  /// The trained aggregator (valid after Train).
  const AggregatorModel& aggregator() const;

  const Options& options() const { return options_; }

 private:
  std::vector<AddressSample> BuildSamples(
      const chain::Ledger& ledger,
      const std::vector<datagen::LabeledAddress>& addresses) const;

  Options options_;
  std::unique_ptr<GraphModel> graph_model_;
  std::unique_ptr<AggregatorModel> aggregator_;
  EmbeddingScaler scaler_;
  bool trained_ = false;
};

}  // namespace ba::core
