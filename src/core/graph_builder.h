#pragma once

#include <vector>

#include "chain/ledger.h"
#include "core/address_graph.h"
#include "util/status.h"
#include "util/stopwatch.h"

/// \file graph_builder.h
/// \brief Address Graph Construction (§III-A): the four-stage pipeline
/// that turns a bitcoin address's transaction history into a list of
/// unified, compressed, structurally-augmented graphs.
///
/// Stage 1  original graph extraction   (100-tx chronological slices)
/// Stage 2  single-transaction address compression (Fig 3)
/// Stage 3  multi-transaction address compression  (Eq. 3-7)
/// Stage 4  graph structure augmentation           (Eq. 8-11)
///
/// Per-stage wall-clock accumulators are built in, because Table V of
/// the paper reports exactly this breakdown.

namespace ba::core {

/// \brief Tunables of the construction pipeline.
struct GraphConstructorOptions {
  /// Transactions per slice; the paper fixes 100. The final slice of an
  /// address may be shorter and is retained.
  int slice_size = 100;
  /// Similarity threshold Ψ of multi-transaction compression (Eq. 5-6).
  double similarity_threshold = 0.5;
  /// σ: minimum number of similar peers for a node to seed a merge.
  int sigma = 1;
  /// Hard cap on transactions considered per address (most recent are
  /// dropped); guards the benches against pathological whales.
  int max_txs_per_address = 2000;
  bool enable_single_compression = true;
  bool enable_multi_compression = true;
  bool enable_augmentation = true;
  /// Stage 3 similarity backend. `false` (default) computes the dense
  /// all-pairs S = A·Aᵀ, M = S·D⁻¹, Q = ReLU(M − Ψ·I) exactly as
  /// Eq. 3-5 describe — the cost profile the paper's Table V reports.
  /// `true` enables this library's sparse-incidence optimization, which
  /// produces identical merge groups at a fraction of the cost (see
  /// bench_ablation_compression).
  bool use_sparse_similarity = false;

  /// \brief Returns OK when every field is usable, or a descriptive
  /// InvalidArgument naming the offending field and value.
  Status Validate() const;
};

/// \brief Accumulated per-stage wall-clock seconds (Table V).
struct StageTimings {
  double extract_seconds = 0.0;
  double single_compress_seconds = 0.0;
  double multi_compress_seconds = 0.0;
  double augment_seconds = 0.0;

  double TotalSeconds() const {
    return extract_seconds + single_compress_seconds +
           multi_compress_seconds + augment_seconds;
  }
};

/// \brief Builds address graphs from ledger history.
///
/// Not thread-safe (timing accumulators); give each worker thread its
/// own constructor.
class GraphConstructor {
 public:
  explicit GraphConstructor(GraphConstructorOptions options = {});

  /// \brief Runs all four stages for one address, returning its
  /// chronological graph list (one graph per 100-tx slice). An address
  /// with no transactions yields an empty list.
  ///
  /// The snapshot overloads read the pinned epoch and are safe to run
  /// concurrently with ledger growth; the Ledger overloads capture a
  /// snapshot internally (one per call).
  std::vector<AddressGraph> BuildGraphs(const chain::LedgerSnapshot& snapshot,
                                        chain::AddressId address);
  std::vector<AddressGraph> BuildGraphs(const chain::Ledger& ledger,
                                        chain::AddressId address);

  /// \brief Same, but only for slices with index >= `start_slice` —
  /// the incremental path of the serving cache: slices before
  /// `start_slice` are immutable on an append-only ledger, so a caller
  /// holding their embeddings only rebuilds the growing tail.
  /// `slice_index` of the returned graphs is the absolute index.
  std::vector<AddressGraph> BuildGraphsFrom(
      const chain::LedgerSnapshot& snapshot, chain::AddressId address,
      int start_slice);
  std::vector<AddressGraph> BuildGraphsFrom(const chain::Ledger& ledger,
                                            chain::AddressId address,
                                            int start_slice);

  // -- Individual stages (exposed for tests and the stage benches) ----

  /// Stage 1: slice the address's transactions and build the original
  /// heterogeneous graphs.
  std::vector<AddressGraph> ExtractOriginalGraphs(
      const chain::LedgerSnapshot& snapshot, chain::AddressId address) const;
  std::vector<AddressGraph> ExtractOriginalGraphs(
      const chain::Ledger& ledger, chain::AddressId address) const;

  /// Stage 1 starting at `start_slice` (see BuildGraphsFrom).
  std::vector<AddressGraph> ExtractOriginalGraphs(
      const chain::LedgerSnapshot& snapshot, chain::AddressId address,
      int start_slice) const;
  std::vector<AddressGraph> ExtractOriginalGraphs(const chain::Ledger& ledger,
                                                  chain::AddressId address,
                                                  int start_slice) const;

  /// Stage 2: merge single-transaction counterparty addresses into
  /// per-transaction hyper nodes (input and output side separately).
  void CompressSingleTransactionAddresses(AddressGraph* graph) const;

  /// Stage 3: merge multi-transaction addresses with similar
  /// connectivity via S = A·Aᵀ, M = S·D⁻¹, Q = ReLU(M − Ψ·I).
  void CompressMultiTransactionAddresses(AddressGraph* graph) const;

  /// Stage 4: compute degree / closeness / betweenness / PageRank and
  /// write them into the centrality feature slots of every node.
  void AugmentStructure(AddressGraph* graph) const;

  /// Per-stage time accumulated across BuildGraphs calls.
  const StageTimings& timings() const { return timings_; }
  void ResetTimings() { timings_ = StageTimings{}; }

  const GraphConstructorOptions& options() const { return options_; }

 private:
  GraphConstructorOptions options_;
  StageTimings timings_;
};

}  // namespace ba::core
