#include "core/aggregator.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace ba::core {

const char* AggregatorName(AggregatorKind kind) {
  switch (kind) {
    case AggregatorKind::kLstm:
      return "LSTM+MLP";
    case AggregatorKind::kBiLstm:
      return "BiLSTM+MLP";
    case AggregatorKind::kAttention:
      return "Attention+MLP";
    case AggregatorKind::kSum:
      return "SUM+MLP";
    case AggregatorKind::kAvg:
      return "AVG+MLP";
    case AggregatorKind::kMax:
      return "MAX+MLP";
    case AggregatorKind::kSelfAttention:
      return "SelfAttn+MLP";
  }
  return "Unknown";
}

std::vector<AggregatorKind> AllAggregators() {
  return {AggregatorKind::kLstm,      AggregatorKind::kBiLstm,
          AggregatorKind::kAttention, AggregatorKind::kSum,
          AggregatorKind::kAvg,       AggregatorKind::kMax};
}

Status AggregatorOptions::Validate() const {
  if (embed_dim <= 0 || hidden_dim <= 0 || mlp_hidden <= 0) {
    return Status::InvalidArgument(
        "aggregator dims must be positive (embed_dim " +
        std::to_string(embed_dim) + ", hidden_dim " +
        std::to_string(hidden_dim) + ", mlp_hidden " +
        std::to_string(mlp_hidden) + ")");
  }
  if (num_classes < 2) {
    return Status::InvalidArgument(
        "aggregator.num_classes must be >= 2 (got " +
        std::to_string(num_classes) + ")");
  }
  if (epochs < 1 || batch_size < 1) {
    return Status::InvalidArgument(
        "aggregator.epochs and batch_size must be >= 1 (epochs " +
        std::to_string(epochs) + ", batch_size " +
        std::to_string(batch_size) + ")");
  }
  if (!(learning_rate > 0.0f)) {
    return Status::InvalidArgument(
        "aggregator.learning_rate must be positive (got " +
        std::to_string(learning_rate) + ")");
  }
  if (num_threads < 0) {
    return Status::InvalidArgument(
        "aggregator.num_threads must be >= 0 (got " +
        std::to_string(num_threads) + ")");
  }
  return Status::OK();
}

AggregatorModel::AggregatorModel(const AggregatorOptions& options)
    : options_(options), rng_(options.seed) {
  int64_t pooled_dim = options_.embed_dim;
  switch (options_.kind) {
    case AggregatorKind::kLstm:
      lstm_ = std::make_unique<nn::Lstm>(options_.embed_dim,
                                         options_.hidden_dim, &rng_);
      pooled_dim = options_.hidden_dim;
      break;
    case AggregatorKind::kBiLstm:
      bilstm_ = std::make_unique<nn::BiLstm>(options_.embed_dim,
                                             options_.hidden_dim, &rng_);
      pooled_dim = 2 * options_.hidden_dim;
      break;
    case AggregatorKind::kAttention:
      attention_ = std::make_unique<nn::AttentionPool>(
          options_.embed_dim, options_.hidden_dim, &rng_);
      pooled_dim = options_.embed_dim;
      break;
    case AggregatorKind::kSelfAttention:
      self_attention_ = std::make_unique<nn::SelfAttentionPool>(
          options_.embed_dim, options_.hidden_dim, &rng_);
      pooled_dim = options_.hidden_dim;
      break;
    case AggregatorKind::kSum:
    case AggregatorKind::kAvg:
    case AggregatorKind::kMax:
      break;
  }
  head_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{pooled_dim, options_.mlp_hidden,
                           static_cast<int64_t>(options_.num_classes)},
      &rng_);

  std::vector<tensor::Var> params = head_->Parameters();
  auto append = [&params](const nn::Module* m) {
    if (m == nullptr) return;
    auto p = m->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  };
  append(lstm_.get());
  append(bilstm_.get());
  append(attention_.get());
  append(self_attention_.get());
  optimizer_ =
      std::make_unique<tensor::Adam>(std::move(params),
                                     options_.learning_rate);
}

std::vector<tensor::Var> AggregatorModel::Parameters() const {
  std::vector<tensor::Var> params = head_->Parameters();
  auto append = [&params](const nn::Module* m) {
    if (m == nullptr) return;
    auto p = m->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  };
  append(lstm_.get());
  append(bilstm_.get());
  append(attention_.get());
  append(self_attention_.get());
  return params;
}

tensor::Var AggregatorModel::Logits(
    const tensor::Tensor& embeddings) const {
  BA_CHECK_EQ(embeddings.rank(), 2);
  BA_CHECK_EQ(embeddings.dim(1), options_.embed_dim);
  const tensor::Var seq = tensor::Constant(embeddings);
  tensor::Var pooled;
  switch (options_.kind) {
    case AggregatorKind::kLstm:
      pooled = lstm_->ForwardLast(seq);
      break;
    case AggregatorKind::kBiLstm:
      pooled = bilstm_->ForwardLast(seq);
      break;
    case AggregatorKind::kAttention:
      pooled = attention_->Forward(seq);
      break;
    case AggregatorKind::kSum:
      pooled = tensor::SumRows(seq);
      break;
    case AggregatorKind::kAvg:
      pooled = tensor::MeanRows(seq);
      break;
    case AggregatorKind::kMax:
      pooled = tensor::MaxRows(seq);
      break;
    case AggregatorKind::kSelfAttention:
      pooled = self_attention_->Forward(seq);
      break;
  }
  return head_->Forward(pooled);
}

int AggregatorModel::Predict(const tensor::Tensor& embeddings) const {
  const tensor::Var logits = Logits(embeddings);
  int best = 0;
  for (int c = 1; c < options_.num_classes; ++c) {
    if (logits->value.at(0, c) > logits->value.at(0, best)) best = c;
  }
  return best;
}

void AggregatorModel::Train(const std::vector<EmbeddingSequence>& train,
                            const std::vector<EmbeddingSequence>* eval,
                            std::vector<EpochStat>* history) {
  BA_CHECK(!train.empty());
  std::vector<size_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Lane setup mirroring GraphModel::Train: lane 0 is this model,
  // lanes 1..T-1 are replicas whose weights are re-synced from the
  // master each batch. No aggregator forward consumes randomness, so
  // no per-example seeds are needed and the RNG stream (shuffles only)
  // is identical at every lane count.
  size_t lanes = options_.num_threads == 0
                     ? util::SharedPoolThreads()
                     : static_cast<size_t>(options_.num_threads);
  lanes = std::max<size_t>(1, std::min(lanes, static_cast<size_t>(
                                                  options_.batch_size)));
  std::vector<std::unique_ptr<AggregatorModel>> replicas;
  std::vector<AggregatorModel*> lane_models{this};
  if (lanes > 1) {
    AggregatorOptions replica_options = options_;
    replica_options.num_threads = 1;
    for (size_t l = 1; l < lanes; ++l) {
      replicas.push_back(std::make_unique<AggregatorModel>(replica_options));
      lane_models.push_back(replicas.back().get());
    }
  }
  std::vector<std::vector<tensor::Var>> lane_params;
  lane_params.reserve(lanes);
  for (AggregatorModel* m : lane_models) {
    lane_params.push_back(m->Parameters());
  }
  const std::vector<tensor::Var>& master_params = lane_params[0];
  const size_t num_params = master_params.size();

  obs::ScopedSpan train_span("core.aggregate.train");
  train_span.AddArg("epochs", static_cast<double>(options_.epochs));
  train_span.AddArg("examples", static_cast<double>(train.size()));
  train_span.AddArg("lanes", static_cast<double>(lanes));
  Stopwatch watch;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    obs::ScopedSpan epoch_span("core.aggregate.epoch");
    watch.Start();
    rng_.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t i = 0;
    while (i < order.size()) {
      const size_t batch_end = std::min(
          order.size(), i + static_cast<size_t>(options_.batch_size));
      const size_t bs = batch_end - i;
      obs::ScopedSpan batch_span("core.aggregate.batch");
      batch_span.AddArg("size", static_cast<double>(bs));
      batch_span.AddArg("lanes", static_cast<double>(lanes));

      for (size_t l = 1; l < lanes; ++l) {
        for (size_t pi = 0; pi < num_params; ++pi) {
          lane_params[l][pi]->value = master_params[pi]->value;
        }
      }
      std::vector<std::vector<tensor::Tensor>> grad_slots(bs);
      std::vector<std::vector<char>> grad_present(bs);
      std::vector<double> loss_slots(bs, 0.0);
      for (size_t e = 0; e < bs; ++e) {
        grad_slots[e].resize(num_params);
        grad_present[e].assign(num_params, 0);
      }
      const auto run_example = [&](size_t lane, size_t e) {
        AggregatorModel* m = lane_models[lane];
        const std::vector<tensor::Var>& params = lane_params[lane];
        m->optimizer_->ZeroGrad();
        const EmbeddingSequence& ex = train[order[i + e]];
        const tensor::Var loss = tensor::SoftmaxCrossEntropy(
            m->Logits(ex.embeddings), std::vector<int>{ex.label});
        tensor::Backward(loss);
        loss_slots[e] = static_cast<double>(loss->value.item());
        for (size_t pi = 0; pi < num_params; ++pi) {
          if (!params[pi]->grad_ready) continue;
          grad_slots[e][pi] = params[pi]->grad;
          grad_present[e][pi] = 1;
        }
      };
      if (lanes == 1) {
        for (size_t e = 0; e < bs; ++e) run_example(0, e);
      } else {
        util::SharedPool().ParallelFor(lanes, [&](size_t lane) {
          for (size_t e = lane; e < bs; e += lanes) run_example(lane, e);
        });
      }

      // Fixed-order reduction (ascending example index, then 1/batch
      // scale): bit-identical at any lane count. See DESIGN.md §7.
      for (size_t pi = 0; pi < num_params; ++pi) {
        const tensor::Var& p = master_params[pi];
        tensor::Tensor sum(p->value.shape());
        bool any = false;
        for (size_t e = 0; e < bs; ++e) {
          if (!grad_present[e][pi]) continue;
          sum.AddInPlace(grad_slots[e][pi]);
          any = true;
        }
        if (any) {
          sum.ScaleInPlace(1.0f / static_cast<float>(bs));
          p->grad = std::move(sum);
          p->grad_ready = true;
        } else {
          p->grad_ready = false;
        }
      }
      optimizer_->Step();
      for (size_t e = 0; e < bs; ++e) epoch_loss += loss_slots[e];
      i = batch_end;
    }
    watch.Stop();

    const double mean_loss = epoch_loss / static_cast<double>(train.size());
    BA_LOG(Info, "core.aggregate")
        << "epoch " << (epoch + 1) << "/" << options_.epochs << " loss "
        << mean_loss << " (" << watch.ElapsedSeconds() << "s)";
    if (epoch_span.active()) {
      epoch_span.AddArg("epoch", static_cast<double>(epoch + 1));
      epoch_span.AddArg("loss", mean_loss);
    }

    if (history != nullptr) {
      EpochStat stat;
      stat.epoch = epoch + 1;
      stat.seconds = watch.ElapsedSeconds();
      stat.train_loss = epoch_loss / static_cast<double>(train.size());
      if (eval != nullptr) {
        stat.eval_f1 = Evaluate(*eval).WeightedAverage().f1;
      }
      history->push_back(stat);
    }
  }
}

metrics::ConfusionMatrix AggregatorModel::Evaluate(
    const std::vector<EmbeddingSequence>& samples) const {
  metrics::ConfusionMatrix cm(options_.num_classes);
  for (const auto& s : samples) cm.Add(s.label, Predict(s.embeddings));
  return cm;
}

std::vector<EmbeddingSequence> BuildEmbeddingSequences(
    const GraphModel& model, const std::vector<AddressSample>& samples) {
  std::vector<EmbeddingSequence> out;
  out.reserve(samples.size());
  for (const auto& s : samples) {
    BA_CHECK_GT(s.num_graphs(), 0);
    EmbeddingSequence seq;
    seq.label = s.label;
    seq.embeddings =
        tensor::Tensor({s.num_graphs(), model.embed_dim()});
    for (int g = 0; g < s.num_graphs(); ++g) {
      const tensor::Tensor e = model.Embed(s.tensors[static_cast<size_t>(g)]);
      for (int64_t j = 0; j < model.embed_dim(); ++j) {
        seq.embeddings.at(g, j) = e.at(0, j);
      }
    }
    out.push_back(std::move(seq));
  }
  return out;
}

}  // namespace ba::core
