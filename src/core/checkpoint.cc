#include "core/checkpoint.h"

#include <algorithm>
#include <cstring>

#include "util/fs.h"

namespace ba::core {

namespace {

constexpr char kMagic[4] = {'B', 'A', 'C', 'K'};
constexpr uint32_t kVersion = 1;

// Plausibility bounds for header values read from disk — a corrupted
// count must fail with a message, never drive a huge allocation.
constexpr uint64_t kMaxTensors = 1u << 20;
constexpr uint32_t kMaxRank = 8;
constexpr int64_t kMaxDim = int64_t{1} << 32;

template <typename T>
Status WritePod(util::AtomicFileWriter* out, const T& value) {
  return out->Write(&value, sizeof(T));
}

Status WriteTensor(util::AtomicFileWriter* out, const tensor::Tensor& t) {
  BA_RETURN_NOT_OK(WritePod(out, static_cast<uint32_t>(t.rank())));
  for (int64_t d = 0; d < t.rank(); ++d) {
    BA_RETURN_NOT_OK(WritePod(out, t.dim(d)));
  }
  return out->Write(t.data(),
                    static_cast<size_t>(t.numel()) * sizeof(float));
}

/// Reads one tensor (shape header + payload) with full validation.
Status ReadTensor(util::BufferReader* r, const std::string& what,
                  tensor::Tensor* out) {
  uint32_t rank = 0;
  if (!r->ReadPod(&rank)) {
    return Status::InvalidArgument(what + ": truncated tensor header");
  }
  if (rank > kMaxRank) {
    return Status::InvalidArgument(what + ": implausible rank " +
                                   std::to_string(rank));
  }
  std::vector<int64_t> shape(rank);
  int64_t numel = 1;
  for (uint32_t d = 0; d < rank; ++d) {
    if (!r->ReadPod(&shape[d])) {
      return Status::InvalidArgument(what + ": truncated tensor header");
    }
    if (shape[d] < 0 || shape[d] > kMaxDim) {
      return Status::InvalidArgument(what + ": implausible dim " +
                                     std::to_string(shape[d]));
    }
    numel *= shape[d];
    if (numel > kMaxDim) {
      return Status::InvalidArgument(what + ": implausible element count");
    }
  }
  // Reject before allocating anything the remaining bytes cannot back.
  const size_t payload = static_cast<size_t>(numel) * sizeof(float);
  if (payload > r->remaining()) {
    return Status::InvalidArgument(what + ": truncated payload (" +
                                   std::to_string(payload) + " bytes needed, " +
                                   std::to_string(r->remaining()) + " left)");
  }
  tensor::Tensor t(std::move(shape));
  if (!r->ReadBytes(t.data(), payload)) {
    return Status::InvalidArgument(what + ": truncated payload");
  }
  *out = std::move(t);
  return Status::OK();
}

Status ReadMoments(util::BufferReader* r, const std::string& what,
                   uint64_t param_count,
                   std::vector<std::pair<uint64_t, tensor::Tensor>>* out) {
  uint64_t entries = 0;
  if (!r->ReadPod(&entries)) {
    return Status::InvalidArgument(what + ": truncated entry count");
  }
  if (entries > param_count) {
    return Status::InvalidArgument(what + ": implausible entry count " +
                                   std::to_string(entries));
  }
  out->reserve(entries);
  for (uint64_t e = 0; e < entries; ++e) {
    uint64_t index = 0;
    if (!r->ReadPod(&index)) {
      return Status::InvalidArgument(what + ": truncated entry index");
    }
    if (index >= param_count) {
      return Status::InvalidArgument(what + ": entry index " +
                                     std::to_string(index) +
                                     " out of range");
    }
    tensor::Tensor t;
    BA_RETURN_NOT_OK(
        ReadTensor(r, what + " entry " + std::to_string(e), &t));
    out->emplace_back(index, std::move(t));
  }
  return Status::OK();
}

Status WriteMoments(
    util::AtomicFileWriter* out,
    const std::vector<std::pair<uint64_t, tensor::Tensor>>& moments) {
  BA_RETURN_NOT_OK(WritePod(out, static_cast<uint64_t>(moments.size())));
  for (const auto& [index, t] : moments) {
    BA_RETURN_NOT_OK(WritePod(out, index));
    BA_RETURN_NOT_OK(WriteTensor(out, t));
  }
  return Status::OK();
}

std::vector<std::pair<uint64_t, tensor::Tensor>> SortedMoments(
    const std::unordered_map<size_t, tensor::Tensor>& moments) {
  std::vector<std::pair<uint64_t, tensor::Tensor>> out;
  out.reserve(moments.size());
  for (const auto& [index, t] : moments) {
    out.emplace_back(static_cast<uint64_t>(index), t);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace

TrainingCheckpoint CaptureTrainingCheckpoint(
    const std::vector<tensor::Var>& params, const tensor::Adam& optimizer,
    const Rng& rng, int epoch) {
  TrainingCheckpoint ckpt;
  ckpt.epoch = epoch;
  ckpt.rng = rng.SaveState();
  ckpt.adam_step = optimizer.step();
  ckpt.params.reserve(params.size());
  for (const auto& p : params) ckpt.params.push_back(p->value);
  ckpt.adam_m = SortedMoments(optimizer.moments_m());
  ckpt.adam_v = SortedMoments(optimizer.moments_v());
  return ckpt;
}

Status SaveTrainingCheckpoint(const TrainingCheckpoint& ckpt,
                              const std::string& path) {
  util::AtomicFileWriter out(path);
  BA_RETURN_NOT_OK(out.Open());
  BA_RETURN_NOT_OK(out.Write(kMagic, sizeof(kMagic)));
  BA_RETURN_NOT_OK(WritePod(&out, kVersion));
  BA_RETURN_NOT_OK(WritePod(&out, static_cast<int32_t>(ckpt.epoch)));
  for (uint64_t s : ckpt.rng.s) BA_RETURN_NOT_OK(WritePod(&out, s));
  BA_RETURN_NOT_OK(
      WritePod(&out, static_cast<uint8_t>(ckpt.rng.gaussian_cached)));
  BA_RETURN_NOT_OK(WritePod(&out, ckpt.rng.gaussian_cache));
  BA_RETURN_NOT_OK(WritePod(&out, static_cast<int32_t>(ckpt.adam_step)));
  BA_RETURN_NOT_OK(WritePod(&out, static_cast<uint64_t>(ckpt.params.size())));
  for (const auto& t : ckpt.params) BA_RETURN_NOT_OK(WriteTensor(&out, t));
  BA_RETURN_NOT_OK(WriteMoments(&out, ckpt.adam_m));
  BA_RETURN_NOT_OK(WriteMoments(&out, ckpt.adam_v));
  // Integrity trailer: CRC32 of every preceding byte.
  const uint32_t crc = out.crc();
  BA_RETURN_NOT_OK(WritePod(&out, crc));
  return out.Commit();
}

Result<TrainingCheckpoint> LoadTrainingCheckpoint(const std::string& path) {
  BA_ASSIGN_OR_RETURN(const std::string buf, util::ReadFileToString(path));
  util::BufferReader r(buf);

  char magic[4];
  if (!r.ReadBytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a BACK training checkpoint: " + path);
  }
  uint32_t version = 0;
  if (!r.ReadPod(&version) || version != kVersion) {
    return Status::InvalidArgument("unsupported training checkpoint version: " +
                                   path);
  }
  if (buf.size() < r.position() + sizeof(uint32_t)) {
    return Status::InvalidArgument("truncated checkpoint (no crc32): " + path);
  }
  uint32_t stored = 0;
  std::memcpy(&stored, buf.data() + buf.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  const uint32_t computed =
      util::Crc32(buf.data(), buf.size() - sizeof(uint32_t));
  if (stored != computed) {
    return Status::InvalidArgument(
        "crc32 mismatch (stored " + std::to_string(stored) + ", computed " +
        std::to_string(computed) + "): corrupted checkpoint " + path);
  }
  r.Truncate(buf.size() - sizeof(uint32_t));

  TrainingCheckpoint ckpt;
  int32_t epoch = 0;
  if (!r.ReadPod(&epoch) || epoch < 0) {
    return Status::InvalidArgument("truncated or invalid epoch: " + path);
  }
  ckpt.epoch = epoch;
  for (uint64_t& s : ckpt.rng.s) {
    if (!r.ReadPod(&s)) {
      return Status::InvalidArgument("truncated rng state: " + path);
    }
  }
  uint8_t gaussian_cached = 0;
  if (!r.ReadPod(&gaussian_cached) ||
      !r.ReadPod(&ckpt.rng.gaussian_cache)) {
    return Status::InvalidArgument("truncated rng state: " + path);
  }
  ckpt.rng.gaussian_cached = gaussian_cached != 0;
  int32_t adam_step = 0;
  if (!r.ReadPod(&adam_step) || adam_step < 0) {
    return Status::InvalidArgument("truncated or invalid adam step: " + path);
  }
  ckpt.adam_step = adam_step;

  uint64_t param_count = 0;
  if (!r.ReadPod(&param_count)) {
    return Status::InvalidArgument("truncated parameter count: " + path);
  }
  if (param_count > kMaxTensors) {
    return Status::InvalidArgument("implausible parameter count " +
                                   std::to_string(param_count) + ": " + path);
  }
  ckpt.params.reserve(param_count);
  for (uint64_t i = 0; i < param_count; ++i) {
    tensor::Tensor t;
    BA_RETURN_NOT_OK(ReadTensor(&r, "param " + std::to_string(i), &t));
    ckpt.params.push_back(std::move(t));
  }
  BA_RETURN_NOT_OK(ReadMoments(&r, "adam m", param_count, &ckpt.adam_m));
  BA_RETURN_NOT_OK(ReadMoments(&r, "adam v", param_count, &ckpt.adam_v));
  if (r.remaining() != 0) {
    return Status::InvalidArgument(
        "trailing garbage (" + std::to_string(r.remaining()) +
        " bytes) after checkpoint body: " + path);
  }
  return ckpt;
}

Status RestoreTrainingCheckpoint(const TrainingCheckpoint& ckpt,
                                 const std::vector<tensor::Var>& params,
                                 tensor::Adam* optimizer, Rng* rng,
                                 int* epoch) {
  if (ckpt.params.size() != params.size()) {
    return Status::InvalidArgument(
        "checkpoint holds " + std::to_string(ckpt.params.size()) +
        " parameters, model has " + std::to_string(params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!ckpt.params[i].SameShape(params[i]->value)) {
      return Status::InvalidArgument("param " + std::to_string(i) +
                                     ": shape mismatch");
    }
  }
  auto validate_moments =
      [&](const std::vector<std::pair<uint64_t, tensor::Tensor>>& moments,
          const char* what) -> Status {
    for (const auto& [index, t] : moments) {
      if (index >= params.size()) {
        return Status::InvalidArgument(std::string(what) + ": index " +
                                       std::to_string(index) +
                                       " out of range");
      }
      if (!t.SameShape(params[index]->value)) {
        return Status::InvalidArgument(std::string(what) + " " +
                                       std::to_string(index) +
                                       ": shape mismatch");
      }
    }
    return Status::OK();
  };
  BA_RETURN_NOT_OK(validate_moments(ckpt.adam_m, "adam m"));
  BA_RETURN_NOT_OK(validate_moments(ckpt.adam_v, "adam v"));

  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = ckpt.params[i];
  }
  std::unordered_map<size_t, tensor::Tensor> m, v;
  for (const auto& [index, t] : ckpt.adam_m) m.emplace(index, t);
  for (const auto& [index, t] : ckpt.adam_v) v.emplace(index, t);
  optimizer->SetMoments(std::move(m), std::move(v));
  optimizer->set_step(ckpt.adam_step);
  rng->RestoreState(ckpt.rng);
  *epoch = ckpt.epoch;
  return Status::OK();
}

std::string CheckpointPath(const std::string& checkpoint_dir) {
  return checkpoint_dir + "/graph_model.ckpt";
}

}  // namespace ba::core
