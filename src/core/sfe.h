#pragma once

#include <array>
#include <cstdint>
#include <vector>

/// \file sfe.h
/// \brief Statistical Feature Extraction (SFE, §III-A.2): summarizes a
/// set of transferred amounts into the fixed feature vector used for
/// every (hyper) node of the address graph (Eq. 1-2, 7).

namespace ba::core {

/// Number of statistics produced by SFE — the paper's list: max, min,
/// sum, mean, count; range, mid-range, percentile, variance, standard
/// deviation; mean absolute deviation, coefficient of variation;
/// kurtosis, skewness, tilt.
inline constexpr int kSfeDim = 15;

/// Index of each statistic inside an SFE vector.
enum SfeIndex : int {
  kSfeMax = 0,
  kSfeMin,
  kSfeSum,
  kSfeMean,
  kSfeCount,
  kSfeRange,
  kSfeMidRange,
  kSfePercentile75,
  kSfeVariance,
  kSfeStdDev,
  kSfeMeanAbsDev,
  kSfeCoeffVar,
  kSfeKurtosis,
  kSfeSkewness,
  kSfeTilt,
};

/// \brief Computes the 15 SFE statistics of `values` (transferred
/// amounts, in BTC). An empty input yields the all-zero vector.
///
/// Unbounded statistics are NOT compressed here; see CompressSfe.
std::array<double, kSfeDim> ComputeSfe(const std::vector<double>& values);

/// \brief Signed-log compression of the scale-carrying SFE entries
/// (max/min/sum/... grow with transaction volume; log1p keeps them in a
/// range neural layers handle) while the scale-free shape statistics
/// (CV, kurtosis, skewness, tilt) are clamped. Deterministic — no
/// dataset-dependent normalization, so train and test are processed
/// identically.
std::array<double, kSfeDim> CompressSfe(
    const std::array<double, kSfeDim>& raw);

/// Convenience: ComputeSfe followed by CompressSfe.
std::array<double, kSfeDim> ComputeCompressedSfe(
    const std::vector<double>& values);

}  // namespace ba::core
