#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/fs.h"
#include "util/logging.h"

namespace ba::obs {

double Histogram::UpperBound(int i) {
  return kFirstUpperBound * std::pow(kGrowth, i);
}

int Histogram::BucketOf(double seconds) {
  if (seconds <= kFirstUpperBound) return 0;
  const int i = static_cast<int>(
                    std::ceil(std::log(seconds / kFirstUpperBound) /
                              std::log(kGrowth)));
  return std::min(i, kNumBuckets - 1);
}

void Histogram::Record(double seconds) {
  // NaN and infinity are recorder bugs, not observations: NaN would
  // poison BucketOf (log of NaN, then an undefined float->int cast) and
  // corrupt the running totals for good, so drop them. Negatives clamp
  // to zero, and huge finite values clamp so the nanosecond totals stay
  // inside int64.
  if (!std::isfinite(seconds)) return;
  constexpr double kMaxSeconds = 9e9;  // ~285 years; nanos fit int64
  seconds = std::clamp(seconds, 0.0, kMaxSeconds);
  buckets_[static_cast<size_t>(BucketOf(seconds))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const int64_t nanos = static_cast<int64_t>(seconds * 1e9);
  total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  int64_t seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !max_nanos_.compare_exchange_weak(seen, nanos,
                                           std::memory_order_relaxed)) {
  }
}

double Histogram::Percentile(double p) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[static_cast<size_t>(i)].load(
        std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 *
                                         static_cast<double>(total))));
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += counts[i];
    if (cumulative >= target) {
      const double upper = UpperBound(i);
      const double lower = i == 0 ? 0.0 : UpperBound(i - 1);
      // Geometric midpoint (arithmetic for the first bucket, whose
      // lower bound is 0).
      const double estimate =
          i == 0 ? upper / 2.0 : std::sqrt(lower * upper);
      // Never report beyond the observed maximum (the top bucket is
      // unbounded).
      const double max_s = static_cast<double>(max_nanos_.load(
                               std::memory_order_relaxed)) *
                           1e-9;
      return std::min(estimate, max_s);
    }
  }
  return static_cast<double>(
             max_nanos_.load(std::memory_order_relaxed)) *
         1e-9;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = Count();
  s.total_seconds = TotalSeconds();
  s.mean_seconds =
      s.count == 0 ? 0.0 : s.total_seconds / static_cast<double>(s.count);
  s.p50_seconds = Percentile(50.0);
  s.p95_seconds = Percentile(95.0);
  s.p99_seconds = Percentile(99.0);
  s.max_seconds = static_cast<double>(
                      max_nanos_.load(std::memory_order_relaxed)) *
                  1e-9;
  return s;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3gs", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3gms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3gus", seconds * 1e6);
  }
  return buf;
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Instrument* MetricsRegistry::GetOrCreate(
    const std::string& name, Kind kind) {
  std::unique_lock<std::mutex> lock(mu_);
  auto [it, inserted] = instruments_.try_emplace(name);
  Instrument& ins = it->second;
  if (inserted) {
    ins.kind = kind;
    switch (kind) {
      case Kind::kCounter:
        ins.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        ins.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kTime:
        ins.time = std::make_unique<TimeAccumulator>();
        break;
      case Kind::kHistogram:
        ins.histogram = std::make_unique<Histogram>();
        break;
    }
  }
  BA_CHECK(ins.kind == kind);  // one name, one instrument kind
  return &ins;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return GetOrCreate(name, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return GetOrCreate(name, Kind::kGauge)->gauge.get();
}

TimeAccumulator* MetricsRegistry::GetTimeAccumulator(
    const std::string& name) {
  return GetOrCreate(name, Kind::kTime)->time.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return GetOrCreate(name, Kind::kHistogram)->histogram.get();
}

void MetricsRegistry::RegisterProvider(
    const std::string& name, std::function<std::string()> json_provider) {
  std::unique_lock<std::mutex> lock(mu_);
  providers_[name] = std::move(json_provider);
}

void MetricsRegistry::UnregisterProvider(const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  providers_.erase(name);
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(instruments_.size());
  for (const auto& [name, ins] : instruments_) names.push_back(name);
  return names;
}

std::string MetricsRegistry::TextExposition() const {
  // Providers run outside the registry lock: a provider may itself
  // touch the registry (or block), and exposition must never deadlock
  // the record path.
  std::vector<std::pair<std::string, std::function<std::string()>>>
      providers;
  std::ostringstream os;
  {
    std::unique_lock<std::mutex> lock(mu_);
    for (const auto& [name, ins] : instruments_) {
      switch (ins.kind) {
        case Kind::kCounter:
          os << name << " " << ins.counter->value() << "\n";
          break;
        case Kind::kGauge:
          os << name << " " << ins.gauge->value() << "\n";
          break;
        case Kind::kTime:
          os << name << " " << FormatSeconds(ins.time->Seconds()) << "\n";
          break;
        case Kind::kHistogram: {
          const HistogramSnapshot h = ins.histogram->Snapshot();
          os << name << " count=" << h.count << " p50="
             << FormatSeconds(h.p50_seconds)
             << " p95=" << FormatSeconds(h.p95_seconds)
             << " p99=" << FormatSeconds(h.p99_seconds)
             << " max=" << FormatSeconds(h.max_seconds) << "\n";
          break;
        }
      }
    }
    providers.assign(providers_.begin(), providers_.end());
  }
  for (const auto& [name, provider] : providers) {
    os << name << " " << provider() << "\n";
  }
  return os.str();
}

namespace {

void AppendJsonKey(std::ostringstream* os, const std::string& name,
                   bool* first) {
  if (!*first) *os << ",";
  *first = false;
  *os << "\"" << name << "\":";
}

}  // namespace

std::string MetricsRegistry::JsonExposition() const {
  std::vector<std::pair<std::string, std::function<std::string()>>>
      providers;
  std::ostringstream os;
  os << "{\"counters\":{";
  {
    std::unique_lock<std::mutex> lock(mu_);
    bool first = true;
    for (const auto& [name, ins] : instruments_) {
      if (ins.kind != Kind::kCounter) continue;
      AppendJsonKey(&os, name, &first);
      os << ins.counter->value();
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto& [name, ins] : instruments_) {
      if (ins.kind != Kind::kGauge) continue;
      AppendJsonKey(&os, name, &first);
      os << ins.gauge->value();
    }
    os << "},\"time_seconds\":{";
    first = true;
    for (const auto& [name, ins] : instruments_) {
      if (ins.kind != Kind::kTime) continue;
      AppendJsonKey(&os, name, &first);
      os << ins.time->Seconds();
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto& [name, ins] : instruments_) {
      if (ins.kind != Kind::kHistogram) continue;
      const HistogramSnapshot h = ins.histogram->Snapshot();
      AppendJsonKey(&os, name, &first);
      os << "{\"count\":" << h.count << ",\"mean_s\":" << h.mean_seconds
         << ",\"p50_s\":" << h.p50_seconds << ",\"p95_s\":" << h.p95_seconds
         << ",\"p99_s\":" << h.p99_seconds << ",\"max_s\":" << h.max_seconds
         << "}";
    }
    providers.assign(providers_.begin(), providers_.end());
  }
  os << "},\"providers\":{";
  bool first = true;
  for (const auto& [name, provider] : providers) {
    AppendJsonKey(&os, name, &first);
    os << provider();  // providers emit a complete JSON value
  }
  os << "}}";
  return os.str();
}

Status MetricsRegistry::SaveJson(const std::string& path) const {
  if (util::FaultInjector::Instance().ShouldFail(kFaultMetricsSave)) {
    return Status::Internal(std::string("injected fault at ") +
                            kFaultMetricsSave);
  }
  const std::string body = JsonExposition();
  util::AtomicFileWriter out(path);
  BA_RETURN_NOT_OK(out.Open());
  BA_RETURN_NOT_OK(out.Append(body));
  BA_RETURN_NOT_OK(out.Append("\n"));
  return out.Commit();
}

Status MetricsRegistry::SaveJson(const std::string& path,
                                 const util::RetryPolicy& retry) const {
  return util::RetryWithBackoff(retry, "metrics SaveJson(" + path + ")",
                                [this, &path] { return SaveJson(path); });
}

}  // namespace ba::obs
