#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/retry.h"
#include "util/status.h"

/// \file metrics.h
/// \brief Process-wide, lock-free metric instruments and the registry
/// that names them.
///
/// The serving layer started with engine-local counters and latency
/// histograms (PR 2's `serve/metrics.h`); this generalizes those
/// primitives so every subsystem — graph construction, training, the
/// thread pool, the inference engine — records into the same taxonomy:
///
///  * `Counter`          monotonically increasing event count
///  * `Gauge`            instantaneous signed level (queue depth)
///  * `TimeAccumulator`  concurrent wall-clock accumulation
///  * `Histogram`        log-bucketed distribution with p50/p95/p99
///
/// All mutators are relaxed atomics: safe from any thread, no locks on
/// the hot path. Readers observe a momentarily-consistent view, which
/// is what a metrics scrape wants.
///
/// `MetricsRegistry` owns *named* instruments, created lazily on first
/// `Get*` (call sites cache the returned pointer — instruments are
/// never destroyed while the process lives) and exposes the whole set
/// as text or a single JSON object. Components with richer snapshot
/// structure (the inference engine) register a JSON *provider* instead
/// of flattening themselves into scalar instruments.
///
/// Naming convention: `<subsystem>.<stage>[.<detail>]`, lower-case,
/// dot-separated — `serve.requests`, `util.thread_pool.queue_depth`,
/// `core.train.epochs` (see DESIGN.md §6).

namespace ba::obs {

/// \brief A monotonically increasing event counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief An instantaneous signed level — queue depths, cache sizes.
/// `Add` lets many producers maintain one process-wide level without
/// coordination (each pairs its +1 with a later -1).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }

  void Add(int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Accumulates wall-clock seconds from concurrent recorders
/// (per-stage pipeline timings). Stored as integer nanoseconds so the
/// accumulation is a plain atomic add.
class TimeAccumulator {
 public:
  void AddSeconds(double seconds) {
    nanos_.fetch_add(static_cast<int64_t>(seconds * 1e9),
                     std::memory_order_relaxed);
  }

  double Seconds() const {
    return static_cast<double>(nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }

 private:
  std::atomic<int64_t> nanos_{0};
};

/// \brief Point-in-time summary of one histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  double total_seconds = 0.0;
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  double max_seconds = 0.0;
};

/// \brief Fixed log-spaced histogram (1µs … ~3.5h upper bucket) with
/// interpolation-free percentile estimation: a percentile reports the
/// geometric midpoint of the bucket containing it, so estimates are
/// within one bucket ratio (×1.5) of the true value — plenty for
/// dashboards, with zero allocation and no locks on the record path.
///
/// The field names say "seconds" because latency is the dominant use,
/// but any non-negative quantity with a heavy tail fits the buckets.
class Histogram {
 public:
  static constexpr int kNumBuckets = 56;
  static constexpr double kFirstUpperBound = 1e-6;  // 1µs
  static constexpr double kGrowth = 1.5;

  /// Records one observation (thread-safe, lock-free). Non-finite
  /// inputs (NaN, ±inf) are dropped — they indicate a recorder bug and
  /// would otherwise poison the totals; negatives clamp to 0.
  void Record(double seconds);

  /// Summarizes the current contents (concurrent-safe; the snapshot is
  /// approximate under concurrent writes).
  HistogramSnapshot Snapshot() const;

  /// Estimated percentile in seconds, p in (0, 100].
  double Percentile(double p) const;

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }

  double TotalSeconds() const {
    return static_cast<double>(
               total_nanos_.load(std::memory_order_relaxed)) *
           1e-9;
  }

 private:
  /// Upper bound of bucket `i` in seconds; the final bucket is
  /// unbounded and reports its lower bound.
  static double UpperBound(int i);
  static int BucketOf(double seconds);

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> total_nanos_{0};
  std::atomic<int64_t> max_nanos_{0};
};

/// Renders seconds as a human-scaled string ("1.23ms", "45.6us").
std::string FormatSeconds(double seconds);

/// \brief Process-wide registry of named instruments.
///
/// `Get*` lazily creates the instrument on first use and returns a
/// pointer that stays valid for the life of the process — cache it at
/// the call site so the registry lock is paid once, not per event.
/// Requesting an existing name with a different instrument kind is a
/// programmer error and aborts.
class MetricsRegistry {
 public:
  /// Fault point of `SaveJson` (see util::FaultInjector): armed, the
  /// dump fails before touching the filesystem — on top of the fs.*
  /// points inside AtomicFileWriter.
  static constexpr const char* kFaultMetricsSave = "obs.metrics.save";

  static MetricsRegistry& Instance();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  TimeAccumulator* GetTimeAccumulator(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// \brief Registers a component that exposes its own JSON object
  /// (e.g. an InferenceEngine snapshot). The callback runs during
  /// exposition on the scraping thread and must be thread-safe; it must
  /// be unregistered before whatever it captures is destroyed.
  void RegisterProvider(const std::string& name,
                        std::function<std::string()> json_provider);
  void UnregisterProvider(const std::string& name);

  /// Human-readable listing, one instrument per line, sorted by name.
  std::string TextExposition() const;

  /// One JSON object: {"counters":{...},"gauges":{...},
  /// "time_seconds":{...},"histograms":{...},"providers":{...}}.
  std::string JsonExposition() const;

  /// Writes `JsonExposition()` atomically (AtomicFileWriter, CRC-less —
  /// the artifact is for humans/Perfetto-side tooling, not reload).
  Status SaveJson(const std::string& path) const;

  /// SaveJson under a retry policy: transient write failures are
  /// retried with backoff (util::RetryWithBackoff); each attempt
  /// re-serializes, so the file that lands reflects the last attempt.
  Status SaveJson(const std::string& path,
                  const util::RetryPolicy& retry) const;

  /// Registered instrument names, sorted (tests and tooling).
  std::vector<std::string> Names() const;

 private:
  MetricsRegistry() = default;

  enum class Kind { kCounter, kGauge, kTime, kHistogram };

  struct Instrument {
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<TimeAccumulator> time;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument* GetOrCreate(const std::string& name, Kind kind);

  mutable std::mutex mu_;
  /// std::map: exposition iterates in sorted order for free, and node
  /// stability keeps instrument pointers valid across inserts.
  std::map<std::string, Instrument> instruments_;
  std::map<std::string, std::function<std::string()>> providers_;
};

}  // namespace ba::obs
