#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/metrics.h"
#include "util/fs.h"
#include "util/logging.h"

namespace ba::obs {

namespace {

/// Span loss must be visible in a metrics scrape, not just in the
/// trace file: a monitoring loop watching `obs.trace.dropped` learns
/// the capture is lossy *while it happens*, when raising the Enable()
/// capacity still rescues the session.
Counter* DroppedCounter() {
  static Counter* c =
      MetricsRegistry::Instance().GetCounter("obs.trace.dropped");
  return c;
}

}  // namespace

namespace {

/// All timestamps are relative to the first NowNs() call, keeping the
/// exported microsecond values small and Perfetto's timeline origin at
/// (roughly) process start.
int64_t SteadyNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendJsonEscaped(std::ostringstream* os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *os << "\\\"";
        break;
      case '\\':
        *os << "\\\\";
        break;
      case '\n':
        *os << "\\n";
        break;
      case '\t':
        *os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *os << buf;
        } else {
          *os << c;
        }
    }
  }
}

}  // namespace

/// \brief Per-thread event ring. Mutation happens on the owning thread;
/// the mutex only serializes against concurrent export/reset, so the
/// record path pays one uncontended lock.
class Tracer::ThreadBuffer {
 public:
  explicit ThreadBuffer(size_t capacity, int tid)
      : capacity_(std::max<size_t>(capacity, 1)), tid_(tid) {}

  void Push(TraceEvent event) {
    std::unique_lock<std::mutex> lock(mu_);
    // The ring materializes on first use: threads that only name
    // themselves (pool workers with tracing off) cost a string, not
    // capacity_ * sizeof(TraceEvent).
    if (ring_.empty()) ring_.resize(capacity_);
    event.tid = tid_;
    if (next_ >= capacity_) DroppedCounter()->Increment();
    ring_[next_ % capacity_] = std::move(event);
    ++next_;
  }

  void SetName(std::string name) {
    std::unique_lock<std::mutex> lock(mu_);
    name_ = std::move(name);
  }

  void AppendSnapshot(std::vector<TraceEvent>* out, uint64_t* total,
                      std::string* name) const {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t held = std::min<uint64_t>(next_, capacity_);
    for (uint64_t i = 0; i < held; ++i) {
      out->push_back(ring_[i]);
    }
    *total += next_;
    *name = name_;
  }

  size_t Held() const {
    std::unique_lock<std::mutex> lock(mu_);
    return static_cast<size_t>(std::min<uint64_t>(next_, capacity_));
  }

  uint64_t Total() const {
    std::unique_lock<std::mutex> lock(mu_);
    return next_;
  }

  void Clear() {
    std::unique_lock<std::mutex> lock(mu_);
    next_ = 0;
  }

  int tid() const { return tid_; }

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t capacity_;
  uint64_t next_ = 0;
  int tid_;
  std::string name_;
};

Tracer& Tracer::Instance() {
  // Leaked singleton: spans may be recorded from detached threads
  // during process teardown; never destroy the buffers under them.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

int64_t Tracer::NowNs() {
  static const int64_t epoch = SteadyNs();
  return SteadyNs() - epoch;
}

Tracer::ThreadBuffer* Tracer::CurrentThreadBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> tls_buffer;
  if (!tls_buffer) {
    std::unique_lock<std::mutex> lock(registry_mu_);
    tls_buffer = std::make_shared<ThreadBuffer>(
        capacity_per_thread_, static_cast<int>(buffers_.size()) + 1);
    buffers_.push_back(tls_buffer);
  }
  return tls_buffer.get();
}

void Tracer::Enable(size_t capacity_per_thread) {
  {
    std::unique_lock<std::mutex> lock(registry_mu_);
    capacity_per_thread_ = std::max<size_t>(capacity_per_thread, 1);
  }
  Reset();
  // NowNs() pins the trace epoch before the first span can observe it.
  NowNs();
  internal::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() {
  internal::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void Tracer::RecordComplete(
    std::string name, int64_t start_ns, int64_t dur_ns,
    std::vector<std::pair<std::string, double>> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.phase = 'X';
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
  e.args = std::move(args);
  CurrentThreadBuffer()->Push(std::move(e));
}

void Tracer::RecordAsync(std::string name, uint64_t flow_id,
                         int64_t start_ns, int64_t dur_ns) {
  if (!enabled() || flow_id == 0) return;
  TraceEvent begin;
  begin.name = name;
  begin.phase = 'b';
  begin.start_ns = start_ns;
  begin.flow_id = flow_id;
  TraceEvent end;
  end.name = std::move(name);
  end.phase = 'e';
  end.start_ns = start_ns + dur_ns;
  end.flow_id = flow_id;
  ThreadBuffer* buffer = CurrentThreadBuffer();
  buffer->Push(std::move(begin));
  buffer->Push(std::move(end));
}

void Tracer::RecordCounter(const std::string& name, double value) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = name;
  e.phase = 'C';
  e.start_ns = NowNs();
  e.args.emplace_back("value", value);
  CurrentThreadBuffer()->Push(std::move(e));
}

void Tracer::SetCurrentThreadName(const std::string& name) {
  CurrentThreadBuffer()->SetName(name);
}

size_t Tracer::EventCount() const {
  std::unique_lock<std::mutex> lock(registry_mu_);
  size_t n = 0;
  for (const auto& b : buffers_) n += b->Held();
  return n;
}

uint64_t Tracer::TotalRecorded() const {
  std::unique_lock<std::mutex> lock(registry_mu_);
  uint64_t n = 0;
  for (const auto& b : buffers_) n += b->Total();
  return n;
}

void Tracer::Reset() {
  std::unique_lock<std::mutex> lock(registry_mu_);
  for (const auto& b : buffers_) b->Clear();
}

std::string Tracer::ToJson() const {
  std::vector<TraceEvent> events;
  std::vector<std::pair<int, std::string>> thread_names;
  uint64_t total = 0;
  {
    std::unique_lock<std::mutex> lock(registry_mu_);
    for (const auto& b : buffers_) {
      std::string name;
      b->AppendSnapshot(&events, &total, &name);
      if (!name.empty()) thread_names.emplace_back(b->tid(), name);
    }
  }

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : thread_names) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"";
    AppendJsonEscaped(&os, name);
    os << "\"}}";
  }
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    // Async events ('b'/'e') need a distinct category plus an id:
    // Perfetto groups same-cat same-id async events into one track,
    // which is what stitches a request's cross-thread flow together.
    const bool flow = e.phase == 'b' || e.phase == 'e';
    os << "{\"name\":\"";
    AppendJsonEscaped(&os, e.name);
    os << "\",\"cat\":\"" << (flow ? "ba.flow" : "ba") << "\",\"ph\":\""
       << e.phase << "\",\"ts\":" << static_cast<double>(e.start_ns) * 1e-3
       << ",\"pid\":1,\"tid\":" << e.tid;
    if (flow) {
      os << ",\"id\":\"0x" << std::hex << e.flow_id << std::dec << "\"";
    }
    if (e.phase == 'X') {
      os << ",\"dur\":" << static_cast<double>(e.dur_ns) * 1e-3;
    }
    if (!e.args.empty()) {
      os << ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : e.args) {
        if (!first_arg) os << ",";
        first_arg = false;
        os << "\"";
        AppendJsonEscaped(&os, key);
        os << "\":" << value;
      }
      os << "}";
    }
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"";
  const uint64_t dropped = total - std::min<uint64_t>(total, events.size());
  if (dropped > 0) {
    os << ",\"metadata\":{\"ba_dropped_events\":" << dropped << "}";
  }
  os << "}";
  return os.str();
}

Status Tracer::Save(const std::string& path) const {
  if (util::FaultInjector::Instance().ShouldFail(kFaultTraceSave)) {
    return Status::Internal(std::string("injected fault at ") +
                            kFaultTraceSave);
  }
  const uint64_t total = TotalRecorded();
  const size_t held = EventCount();
  if (total > held) {
    BA_LOG(Warn, "obs.trace")
        << "ring buffers overflowed: exporting " << held << " of " << total
        << " recorded events (raise Enable() capacity)";
  }
  const std::string body = ToJson();
  util::AtomicFileWriter out(path);
  BA_RETURN_NOT_OK(out.Open());
  BA_RETURN_NOT_OK(out.Append(body));
  BA_RETURN_NOT_OK(out.Append("\n"));
  return out.Commit();
}

namespace {

std::string& ExitPathStorage() {
  static std::string* path = new std::string();
  return *path;
}

void SaveTraceAtExit() {
  const std::string& path = ExitPathStorage();
  if (path.empty()) return;
  const Status s = Tracer::Instance().Save(path);
  if (!s.ok()) {
    BA_LOG(Error, "obs.trace") << "failed to save exit trace to " << path
                               << ": " << s.ToString();
  } else {
    BA_LOG(Info, "obs.trace") << "saved trace to " << path;
  }
}

}  // namespace

void Tracer::SaveAtExit(const std::string& path) {
  {
    std::unique_lock<std::mutex> lock(registry_mu_);
    if (!exit_hook_registered_) {
      exit_hook_registered_ = true;
      std::atexit(SaveTraceAtExit);
    }
  }
  ExitPathStorage() = path;
}

void ScopedSpan::Begin(const char* name) {
  active_ = true;
  name_ = name;
  start_ns_ = Tracer::NowNs();
}

void ScopedSpan::End() {
  Tracer::Instance().RecordComplete(std::move(name_), start_ns_,
                                    Tracer::NowNs() - start_ns_,
                                    std::move(args_));
}

namespace {

/// Environment activation: any binary linking obs becomes traceable
/// with `BA_TRACE=1` (collect) or `BA_TRACE_OUT=<path>` (collect and
/// save at exit) — no code changes needed. This initializer lives in
/// the same TU as Tracer::Instance, so any use of spans links it in.
struct TraceEnvInit {
  TraceEnvInit() {
    const char* out = std::getenv("BA_TRACE_OUT");
    const char* on = std::getenv("BA_TRACE");
    if (out != nullptr && out[0] != '\0') {
      Tracer::Instance().Enable();
      Tracer::Instance().SaveAtExit(out);
    } else if (on != nullptr && on[0] != '\0' &&
               std::string(on) != "0") {
      Tracer::Instance().Enable();
    }
  }
};
TraceEnvInit trace_env_init;

}  // namespace

}  // namespace ba::obs
