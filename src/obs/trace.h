#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

/// \file trace.h
/// \brief Scoped-span tracing with Chrome trace-event JSON export.
///
/// `BA_TRACE_SPAN("core.sfe")` drops an RAII span into the enclosing
/// scope; when tracing is enabled its wall-clock extent (plus any
/// numeric args attached via `AddArg`) is recorded into a per-thread
/// ring buffer. `Tracer::Save()` exports everything as Chrome
/// trace-event JSON — open the file in Perfetto
/// (https://ui.perfetto.dev) or `chrome://tracing` to see the whole
/// pipeline laid out per thread: graph-construction stages, training
/// epochs, serve batches, thread-pool tasks.
///
/// Cost model:
///  * disabled (default): one relaxed atomic load + branch per span —
///    safe to leave in the hottest paths (the <2% serve-throughput
///    budget in DESIGN.md §6 is measured against this).
///  * enabled: a steady_clock read at span start/end and a short
///    per-thread mutex hold at destruction. Ring buffers cap memory;
///    when a thread overflows its buffer the oldest spans are
///    overwritten; each overwrite increments the `obs.trace.dropped`
///    registry counter (visible in metrics scrapes) and the total is
///    also reported in the export metadata.
///
/// Activation: programmatic (`Tracer::Instance().Enable()`) or by
/// environment — `BA_TRACE=1` enables tracing at process start, and
/// `BA_TRACE_OUT=<path>` additionally saves the trace at process exit,
/// so any binary in this repo can be traced without code changes.
///
/// Span naming convention: `<subsystem>.<stage>` (see DESIGN.md §6).

namespace ba::obs {

namespace internal {

/// The tracing master switch. Inline so the disabled-path check in
/// ScopedSpan compiles to a single relaxed load, no function call.
inline std::atomic<bool> g_trace_enabled{false};

}  // namespace internal

/// \brief One recorded event (a completed span, a counter sample, or
/// one end of an async flow).
struct TraceEvent {
  std::string name;
  char phase = 'X';       ///< 'X' complete span, 'C' counter sample,
                          ///< 'b'/'e' async begin/end (flow events)
  int64_t start_ns = 0;   ///< relative to the process trace epoch
  int64_t dur_ns = 0;     ///< span duration ('X' only)
  int tid = 0;            ///< registration order of the owning thread
  /// Correlates 'b'/'e' pairs: Perfetto stitches async events sharing
  /// an id into one track regardless of which thread recorded them —
  /// the request trace_id goes here.
  uint64_t flow_id = 0;
  /// Numeric args rendered into the event's "args" object ('X'), or
  /// the sampled value ('C', single entry named "value").
  std::vector<std::pair<std::string, double>> args;
};

/// \brief Process-wide span collector and exporter.
class Tracer {
 public:
  /// Fault point of `Save` (see util::FaultInjector).
  static constexpr const char* kFaultTraceSave = "obs.trace.save";

  static constexpr size_t kDefaultCapacityPerThread = 1 << 16;

  static Tracer& Instance();

  /// Starts collecting. Clears previously recorded events; threads seen
  /// after this call get ring buffers of `capacity_per_thread` events.
  void Enable(size_t capacity_per_thread = kDefaultCapacityPerThread);

  /// Stops collecting (already-recorded events stay exportable).
  void Disable();

  bool enabled() const {
    return internal::g_trace_enabled.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since the process trace epoch (steady clock).
  static int64_t NowNs();

  /// Records a completed span ending now. Called by ScopedSpan; usable
  /// directly for spans whose extent isn't a C++ scope.
  void RecordComplete(std::string name, int64_t start_ns, int64_t dur_ns,
                      std::vector<std::pair<std::string, double>> args = {});

  /// Records a counter sample — Perfetto renders these as a per-name
  /// counter track (queue depths, cache sizes over time).
  void RecordCounter(const std::string& name, double value);

  /// Records an async span [start_ns, start_ns + dur_ns) correlated by
  /// `flow_id` (exported as Chrome 'b'/'e' events). Async events with
  /// the same id share one Perfetto track across threads — so the
  /// client round trip, the server dispatch and the engine's
  /// per-request extent, each recorded where it happened, stack on a
  /// single row keyed by the request's trace_id. No-op when disabled
  /// or flow_id is 0.
  void RecordAsync(std::string name, uint64_t flow_id, int64_t start_ns,
                   int64_t dur_ns);

  /// Names the calling thread in the exported trace (metadata event).
  void SetCurrentThreadName(const std::string& name);

  /// Events currently held across all thread buffers.
  size_t EventCount() const;

  /// Events recorded since Enable, including any that overflowed their
  /// ring buffer. `TotalRecorded() - EventCount()` spans were dropped.
  uint64_t TotalRecorded() const;

  /// Drops every recorded event (buffers stay registered).
  void Reset();

  /// The full trace as Chrome trace-event JSON:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string ToJson() const;

  /// Writes `ToJson()` atomically via util::AtomicFileWriter, passing
  /// the `obs.trace.save` fault point first.
  Status Save(const std::string& path) const;

  /// Registers a process-exit hook that saves the trace to `path`
  /// (first call wins; later calls update the path).
  void SaveAtExit(const std::string& path);

 private:
  Tracer() = default;
  friend class ScopedSpan;

  class ThreadBuffer;
  ThreadBuffer* CurrentThreadBuffer();

  mutable std::mutex registry_mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  size_t capacity_per_thread_ = kDefaultCapacityPerThread;
  bool exit_hook_registered_ = false;
};

/// \brief RAII span: records [construction, destruction) under `name`
/// when tracing is enabled at construction time. Near-zero cost when
/// disabled. Use the BA_TRACE_SPAN macro for anonymous spans; declare a
/// ScopedSpan directly when you need to attach args.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (internal::g_trace_enabled.load(std::memory_order_relaxed)) {
      Begin(name);
    }
  }

  ~ScopedSpan() {
    if (active_) End();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a numeric arg shown in the event's detail pane. No-op
  /// when the span is inactive (tracing disabled at construction).
  void AddArg(const char* key, double value) {
    if (active_) args_.emplace_back(key, value);
  }

  /// True when this span will be recorded — gate any work done only to
  /// compute args (e.g. gradient norms) on this.
  bool active() const { return active_; }

 private:
  void Begin(const char* name);
  void End();

  bool active_ = false;
  int64_t start_ns_ = 0;
  std::string name_;
  std::vector<std::pair<std::string, double>> args_;
};

#define BA_TRACE_CONCAT_INNER_(a, b) a##b
#define BA_TRACE_CONCAT_(a, b) BA_TRACE_CONCAT_INNER_(a, b)

/// Traces the enclosing scope as one span named `name` (a string
/// literal following the `<subsystem>.<stage>` convention).
#define BA_TRACE_SPAN(name) \
  ::ba::obs::ScopedSpan BA_TRACE_CONCAT_(ba_trace_span_, __LINE__)(name)

}  // namespace ba::obs
