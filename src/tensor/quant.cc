#include "tensor/quant.h"

#include <algorithm>
#include <cmath>

#include "tensor/gemm.h"

namespace ba::tensor {

namespace {

/// Half-away-from-zero rounding to the saturating int8 grid.
/// std::lround is rounding-mode independent, so quantization is
/// deterministic across build flags and call sites.
inline int32_t QuantizeOne(float v, float inv_scale) {
  const long q = std::lround(v * inv_scale);
  return static_cast<int32_t>(std::clamp<long>(q, -127, 127));
}

}  // namespace

QuantizedWeights QuantizeWeights(const Tensor& weight, const Tensor* bias) {
  BA_CHECK_EQ(weight.rank(), 2);
  const int64_t in = weight.dim(0), out = weight.dim(1);
  QuantizedWeights qw;
  qw.in_features = in;
  qw.out_features = out;
  qw.packed_k = internal::Int8PackedK(in);
  qw.packed.assign(static_cast<size_t>(out * qw.packed_k), 0);
  qw.scales.resize(static_cast<size_t>(out));
  qw.colsums.resize(static_cast<size_t>(out));
  for (int64_t j = 0; j < out; ++j) {
    float absmax = 0.0f;
    for (int64_t p = 0; p < in; ++p)
      absmax = std::max(absmax, std::abs(weight.at(p, j)));
    // An all-zero channel keeps scale 1 and codes 0 — exact.
    const float scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
    const float inv = 1.0f / scale;
    int8_t* channel = qw.packed.data() + j * qw.packed_k;
    int32_t colsum = 0;
    for (int64_t p = 0; p < in; ++p) {
      const int32_t q = QuantizeOne(weight.at(p, j), inv);
      channel[p] = static_cast<int8_t>(q);
      colsum += q;
    }
    qw.scales[static_cast<size_t>(j)] = scale;
    qw.colsums[static_cast<size_t>(j)] = colsum;
  }
  if (bias != nullptr) {
    BA_CHECK_EQ(bias->numel(), out);
    qw.bias.assign(bias->data(), bias->data() + out);
  }
  qw.kernel_packed = internal::Int8KernelPackedB(qw.packed.data(), out,
                                                 qw.packed_k);
  return qw;
}

void QuantizeActivations(const Tensor& x, float a_scale,
                         std::vector<uint8_t>* out) {
  BA_CHECK_EQ(x.rank(), 2);
  BA_CHECK_GT(a_scale, 0.0f);
  const int64_t m = x.dim(0), k = x.dim(1);
  const int64_t kp = internal::Int8PackedK(k);
  // Padding lanes encode 0.0 (code 128); they multiply the zero-padded
  // weight lanes, so their value never reaches an output.
  out->assign(static_cast<size_t>(m * kp), 128);
  const float inv = 1.0f / a_scale;
  const float* xd = x.data();
  for (int64_t i = 0; i < m; ++i)
    internal::Int8QuantizeRow(xd + i * k, out->data() + i * kp, k, inv);
}

Tensor Int8LinearValue(const Tensor& x, const QuantizedWeights& qw,
                       float a_scale) {
  BA_CHECK_EQ(x.rank(), 2);
  BA_CHECK_EQ(x.dim(1), qw.in_features);
  const int64_t m = x.dim(0);
  // Reused per-thread scratch: serving calls this per micro-batch and
  // a fresh large allocation per call would churn mmap.
  thread_local std::vector<uint8_t> qx;
  QuantizeActivations(x, a_scale, &qx);
  Tensor y({m, qw.out_features});
  const int8_t* b = qw.kernel_packed.empty() ? qw.packed.data()
                                             : qw.kernel_packed.data();
  internal::Int8GemmDispatch(qx.data(), b, qw.colsums.data(),
                             qw.scales.data(),
                             qw.bias.empty() ? nullptr : qw.bias.data(),
                             a_scale, y.data(), m, qw.packed_k,
                             qw.out_features);
  return y;
}

}  // namespace ba::tensor
