#pragma once

#include <cmath>
#include <unordered_map>
#include <vector>

#include "tensor/autograd.h"

/// \file optimizer.h
/// \brief First-order optimizers (SGD with momentum, Adam) used to
/// train every neural model in the reproduction.

namespace ba::tensor {

/// \brief Base class: holds the parameter list and the zero-grad step.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the currently accumulated gradients.
  /// Parameters with no accumulated gradient are skipped.
  virtual void Step() = 0;

  /// Clears accumulated gradients; call between minibatches.
  void ZeroGrad() { tensor::ZeroGrad(params_); }

  const std::vector<Var>& params() const { return params_; }

 protected:
  std::vector<Var> params_;
};

/// \brief Stochastic gradient descent with classical momentum and
/// optional decoupled weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f)
      : Optimizer(std::move(params)),
        lr_(lr),
        momentum_(momentum),
        weight_decay_(weight_decay) {}

  void Step() override {
    for (size_t pi = 0; pi < params_.size(); ++pi) {
      Var& p = params_[pi];
      if (!p->grad_ready) continue;
      Tensor& w = p->value;
      const Tensor& g = p->grad;
      if (momentum_ > 0.0f) {
        auto [it, inserted] = velocity_.try_emplace(pi, Tensor(w.shape()));
        Tensor& v = it->second;
        for (int64_t i = 0; i < w.numel(); ++i) {
          float grad = g.data()[i] + weight_decay_ * w.data()[i];
          v.data()[i] = momentum_ * v.data()[i] + grad;
          w.data()[i] -= lr_ * v.data()[i];
        }
      } else {
        for (int64_t i = 0; i < w.numel(); ++i) {
          float grad = g.data()[i] + weight_decay_ * w.data()[i];
          w.data()[i] -= lr_ * grad;
        }
      }
    }
  }

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::unordered_map<size_t, Tensor> velocity_;
};

/// \brief Adam (Kingma & Ba) with bias correction and optional L2.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f)
      : Optimizer(std::move(params)),
        lr_(lr),
        beta1_(beta1),
        beta2_(beta2),
        eps_(eps),
        weight_decay_(weight_decay) {}

  void Step() override {
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, t_);
    const double bc2 = 1.0 - std::pow(beta2_, t_);
    for (size_t pi = 0; pi < params_.size(); ++pi) {
      Var& p = params_[pi];
      if (!p->grad_ready) continue;
      Tensor& w = p->value;
      const Tensor& g = p->grad;
      auto [mit, m_inserted] = m_.try_emplace(pi, Tensor(w.shape()));
      auto [vit, v_inserted] = v_.try_emplace(pi, Tensor(w.shape()));
      Tensor& m = mit->second;
      Tensor& v = vit->second;
      for (int64_t i = 0; i < w.numel(); ++i) {
        const float grad = g.data()[i] + weight_decay_ * w.data()[i];
        m.data()[i] = beta1_ * m.data()[i] + (1.0f - beta1_) * grad;
        v.data()[i] = beta2_ * v.data()[i] + (1.0f - beta2_) * grad * grad;
        const double m_hat = m.data()[i] / bc1;
        const double v_hat = v.data()[i] / bc2;
        w.data()[i] -= static_cast<float>(lr_ * m_hat /
                                          (std::sqrt(v_hat) + eps_));
      }
    }
  }

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

  /// \name Checkpointing access
  /// The bias-correction step counter and first/second moment tensors
  /// (keyed by parameter index; absent = parameter never updated).
  /// Restoring them plus the parameter values reproduces the update
  /// stream bit-exactly across a kill/resume boundary.
  ///@{
  int step() const { return t_; }
  void set_step(int t) { t_ = t; }
  const std::unordered_map<size_t, Tensor>& moments_m() const { return m_; }
  const std::unordered_map<size_t, Tensor>& moments_v() const { return v_; }
  void SetMoments(std::unordered_map<size_t, Tensor> m,
                  std::unordered_map<size_t, Tensor> v) {
    m_ = std::move(m);
    v_ = std::move(v);
  }
  ///@}

 private:
  float lr_;
  float beta1_;
  float beta2_;
  float eps_;
  float weight_decay_;
  int t_ = 0;
  std::unordered_map<size_t, Tensor> m_;
  std::unordered_map<size_t, Tensor> v_;
};

}  // namespace ba::tensor
