#include "tensor/serialize.h"

#include <cstring>
#include <fstream>

namespace ba::tensor {

namespace {

constexpr char kMagic[4] = {'B', 'A', 'T', 'N'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

}  // namespace

Status SaveParameters(const std::vector<Var>& params,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint64_t>(params.size()));
  for (const auto& p : params) {
    const Tensor& t = p->value;
    WritePod(out, static_cast<uint32_t>(t.rank()));
    for (int64_t d = 0; d < t.rank(); ++d) WritePod(out, t.dim(d));
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Status LoadParameters(const std::vector<Var>& params,
                      const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a BATN checkpoint: " + path);
  }
  uint32_t version = 0;
  uint64_t count = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  if (!ReadPod(in, &count) || count != params.size()) {
    return Status::InvalidArgument(
        "checkpoint holds " + std::to_string(count) + " tensors, model has " +
        std::to_string(params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& t = params[i]->value;
    uint32_t rank = 0;
    if (!ReadPod(in, &rank) || rank != static_cast<uint32_t>(t.rank())) {
      return Status::InvalidArgument("tensor " + std::to_string(i) +
                                     ": rank mismatch");
    }
    for (int64_t d = 0; d < t.rank(); ++d) {
      int64_t dim = 0;
      if (!ReadPod(in, &dim) || dim != t.dim(d)) {
        return Status::InvalidArgument("tensor " + std::to_string(i) +
                                       ": shape mismatch");
      }
    }
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.numel() * sizeof(float)));
    if (!in.good()) {
      return Status::InvalidArgument("tensor " + std::to_string(i) +
                                     ": truncated payload");
    }
  }
  return Status::OK();
}

}  // namespace ba::tensor
