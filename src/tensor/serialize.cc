#include "tensor/serialize.h"

#include <cstring>

#include "util/fs.h"

namespace ba::tensor {

namespace {

constexpr char kMagic[4] = {'B', 'A', 'T', 'N'};
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersionV2 = 2;

// Plausibility bounds checked before any header value is trusted. A
// corrupted header must produce a descriptive error, never a huge
// allocation or an out-of-bounds read.
constexpr uint64_t kMaxTensors = 1u << 20;
constexpr uint32_t kMaxRank = 8;
constexpr int64_t kMaxDim = int64_t{1} << 32;

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

std::string TensorLabel(size_t i) { return "tensor " + std::to_string(i); }

/// Parses the per-tensor records of a checkpoint body into `params`,
/// validating every header field against the expected shapes before it
/// is used.
Status ParseTensors(util::BufferReader* r, const std::vector<Var>& params,
                    const std::string& path) {
  uint64_t count = 0;
  if (!r->ReadPod(&count)) {
    return Status::InvalidArgument("truncated header (no tensor count): " +
                                   path);
  }
  if (count > kMaxTensors) {
    return Status::InvalidArgument("implausible tensor count " +
                                   std::to_string(count) + ": " + path);
  }
  if (count != params.size()) {
    return Status::InvalidArgument(
        "checkpoint holds " + std::to_string(count) + " tensors, model has " +
        std::to_string(params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& t = params[i]->value;
    uint32_t rank = 0;
    if (!r->ReadPod(&rank)) {
      return Status::InvalidArgument(TensorLabel(i) + ": truncated header");
    }
    if (rank > kMaxRank) {
      return Status::InvalidArgument(TensorLabel(i) + ": implausible rank " +
                                     std::to_string(rank));
    }
    if (rank != static_cast<uint32_t>(t.rank())) {
      return Status::InvalidArgument(TensorLabel(i) + ": rank mismatch (" +
                                     std::to_string(rank) + " vs " +
                                     std::to_string(t.rank()) + ")");
    }
    for (int64_t d = 0; d < t.rank(); ++d) {
      int64_t dim = 0;
      if (!r->ReadPod(&dim)) {
        return Status::InvalidArgument(TensorLabel(i) + ": truncated header");
      }
      if (dim < 0 || dim > kMaxDim) {
        return Status::InvalidArgument(TensorLabel(i) + ": implausible dim " +
                                       std::to_string(dim));
      }
      if (dim != t.dim(d)) {
        return Status::InvalidArgument(TensorLabel(i) + ": shape mismatch");
      }
    }
    const size_t payload = static_cast<size_t>(t.numel()) * sizeof(float);
    if (!r->ReadBytes(t.data(), payload)) {
      return Status::InvalidArgument(TensorLabel(i) + ": truncated payload");
    }
  }
  return Status::OK();
}

}  // namespace

std::string SerializeParameters(const std::vector<Var>& params) {
  std::string image;
  image.append(kMagic, sizeof(kMagic));
  AppendPod(&image, kVersionV2);
  AppendPod(&image, static_cast<uint64_t>(params.size()));
  for (const auto& p : params) {
    const Tensor& t = p->value;
    AppendPod(&image, static_cast<uint32_t>(t.rank()));
    for (int64_t d = 0; d < t.rank(); ++d) {
      AppendPod(&image, t.dim(d));
    }
    image.append(reinterpret_cast<const char*>(t.data()),
                 static_cast<size_t>(t.numel()) * sizeof(float));
  }
  // Integrity trailer: CRC32 of every preceding byte.
  const uint32_t crc = util::Crc32(image);
  AppendPod(&image, crc);
  return image;
}

Status DeserializeParameters(const std::vector<Var>& params,
                             const std::string& image,
                             const std::string& context) {
  util::BufferReader r(image);

  char magic[4];
  if (!r.ReadBytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a BATN checkpoint: " + context);
  }
  uint32_t version = 0;
  if (!r.ReadPod(&version)) {
    return Status::InvalidArgument("truncated header (no version): " +
                                   context);
  }
  if (version != kVersionV1 && version != kVersionV2) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version) + ": " + context);
  }
  if (version == kVersionV2) {
    // The final 4 bytes are the CRC32 of everything before them.
    if (image.size() < r.position() + sizeof(uint32_t)) {
      return Status::InvalidArgument("truncated checkpoint (no crc32): " +
                                     context);
    }
    uint32_t stored = 0;
    std::memcpy(&stored, image.data() + image.size() - sizeof(uint32_t),
                sizeof(uint32_t));
    const uint32_t computed =
        util::Crc32(image.data(), image.size() - sizeof(uint32_t));
    if (stored != computed) {
      return Status::InvalidArgument(
          "crc32 mismatch (stored " + std::to_string(stored) + ", computed " +
          std::to_string(computed) + "): corrupted checkpoint " + context);
    }
    r.Truncate(image.size() - sizeof(uint32_t));
  }
  BA_RETURN_NOT_OK(ParseTensors(&r, params, context));
  if (r.remaining() != 0) {
    return Status::InvalidArgument(
        "trailing garbage (" + std::to_string(r.remaining()) +
        " bytes) after checkpoint body: " + context);
  }
  return Status::OK();
}

Status SaveParameters(const std::vector<Var>& params,
                      const std::string& path) {
  const std::string image = SerializeParameters(params);
  util::AtomicFileWriter out(path);
  BA_RETURN_NOT_OK(out.Open());
  BA_RETURN_NOT_OK(out.Append(image));
  return out.Commit();
}

Status LoadParameters(const std::vector<Var>& params,
                      const std::string& path) {
  BA_ASSIGN_OR_RETURN(const std::string buf, util::ReadFileToString(path));
  return DeserializeParameters(params, buf, path);
}

}  // namespace ba::tensor
