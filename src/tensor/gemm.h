#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

/// \file gemm.h
/// \brief Blocked, auto-vectorization-friendly GEMM kernels behind the
/// `MatMulValue` / `MatMulTransposeAValue` / `MatMulTransposeBValue`
/// entry points in tensor.h, plus the original scalar loops kept as
/// `MatMulReference*` for parity tests and bench baselines, plus the
/// int8 inference kernel family behind `tensor/quant.h`.
///
/// Kernel contract (see DESIGN.md §7):
///  - register tiling: MR×NR = 4×16 accumulator tile, B rows accessed
///    contiguously so the inner loop vectorizes without -ffast-math;
///  - k-blocking: the shared dimension is walked in kKc-sized chunks
///    so the per-chunk working set (A chunk + C + one B column panel)
///    stays inside L2 at 512³ and above;
///  - A-panel packing: when A arrives column-strided (the transposed-A
///    layout), each k-chunk of the row panel is packed into a
///    contiguous row-major scratch panel before the tile sweep, so the
///    micro-kernels always stream A at unit stride;
///  - one accumulation chain per output element: within a chunk the
///    chain ascends over the shared dimension, and chunks fold into C
///    in ascending chunk order — blocking, packing and the row-panel
///    thread split never reorder a chain, so results are bit-identical
///    at any thread count (they may differ from the reference loops by
///    FMA-contraction rounding, which parity tests bound by tolerance);
///  - large shapes split into row panels over `util::SharedPool()`
///    unless the caller is already a pool worker (nested parallelism
///    degrades to serial rather than deadlocking).
///
/// Int8 contract (see DESIGN.md §7 "Quantized inference"):
///  - A is u8 row-major m×kp with zero-point 128, B is s8 packed one
///    output channel per row (n×kp), kp = k rounded up to kInt8KAlign
///    with zero-padded B so padding cancels exactly;
///  - the integer core is exact: every variant (scalar / AVX2 /
///    AVX-512 VNNI) produces bit-identical int32 dot products, so ISA
///    dispatch is unobservable;
///  - the epilogue fuses zero-point compensation, per-channel dequant
///    and bias: c[i][j] = a_scale·scale[j]·(acc − 128·colsum[j]) +
///    bias[j].

namespace ba::tensor {

/// Pre-PR naive kernels, retained as the semantic reference.
Tensor MatMulReferenceValue(const Tensor& a, const Tensor& b);
Tensor MatMulReferenceTransposeAValue(const Tensor& a, const Tensor& b);
Tensor MatMulReferenceTransposeBValue(const Tensor& a, const Tensor& b);

namespace internal {

/// C(m,n) += A·B with A read through strides (`a[i*as_i + p*as_p]`,
/// covering both normal and transposed-A layouts) and B (k,n)
/// row-major. Rows [i_begin, i_end) of C are produced; C is assumed
/// zero-initialized in that range. Exposed for the bench harness and
/// kernel-level tests; model code goes through MatMul*Value.
void GemmRowRange(const float* a, int64_t as_i, int64_t as_p, const float* b,
                  float* c, int64_t i_begin, int64_t i_end, int64_t k,
                  int64_t n);

/// Full dispatch: serial for small shapes, row-panel split over
/// `util::SharedPool()` above kParallelFlops (with a `tensor.gemm`
/// span when tracing).
void GemmDispatch(const float* a, int64_t as_i, int64_t as_p, const float* b,
                  float* c, int64_t m, int64_t k, int64_t n);

/// m·k·n above which GemmDispatch fans row panels across the shared
/// pool (when not already inside a pool worker).
inline constexpr int64_t kParallelFlops = int64_t{1} << 21;

/// k-chunk length for the fp32 kernels. 256 keeps the per-chunk
/// working set (m×kKc A chunk + C + a kNr-wide B panel) inside a 2 MB
/// L2 up to m = n = 1024.
inline constexpr int64_t kKc = 256;

/// Int8 operands are padded to this many k-entries (one AVX-512
/// register of bytes); B padding is zero so padded lanes cancel.
inline constexpr int64_t kInt8KAlign = 64;

/// k rounded up to the packed int8 stride.
inline constexpr int64_t Int8PackedK(int64_t k) {
  return (k + kInt8KAlign - 1) / kInt8KAlign * kInt8KAlign;
}

/// Re-lays the canonical channel-major weight codes (channel j's kp
/// codes contiguous at `canonical + j*kp`) into whatever layout the
/// dispatched int8 kernel prefers. Returns an empty vector when the
/// dispatched kernel consumes the canonical layout directly (scalar /
/// AVX2); the AVX-512 VNNI kernel gets 16-column panels with groups of
/// 4 k-bytes interleaved per column so one register load feeds a
/// vpdpbusd that accumulates 16 output columns vertically. Called once
/// per layer by QuantizeWeights; kernels and this packer are resolved
/// by the same dispatcher, so the pair always matches.
std::vector<int8_t> Int8KernelPackedB(const int8_t* canonical, int64_t n,
                                      int64_t kp);

/// Quantizes one activation row to the u8 zero-point-128 grid:
/// out[p] = clamp(round(row[p] · inv_scale), −127, 127) + 128 with
/// half-away-from-zero rounding. Every dispatch variant (scalar /
/// AVX-512) is bit-identical; the wide variant exists because the
/// scalar clamp/round chain refuses to autovectorize and would
/// otherwise dominate small int8 GEMMs.
void Int8QuantizeRow(const float* row, uint8_t* out, int64_t k,
                     float inv_scale);

/// Int8 row-panel kernel. `a` is u8 m×kp row-major (zero-point 128),
/// `b` is the weight-code buffer in the dispatched kernel's layout
/// (`Int8KernelPackedB` result, or the canonical channel-major buffer
/// when that returned empty), `colsum[j]` = Σ_p q[p][j] over the real
/// k (padding is zero), `scale[j]` the per-channel weight scale,
/// `a_scale` the per-tensor activation scale, `bias` fp32 per channel
/// (may be nullptr for none). Writes rows [i_begin, i_end) of fp32
/// C(m,n):
///   c[i][j] = a_scale·scale[j]·(Σ_p a[i][p]·q[p][j] − 128·colsum[j])
///             + bias[j]
/// The int32 accumulation is exact (no wrap) for kp ≤ 2³¹/(255·127),
/// which Int8GemmDispatch enforces.
void Int8GemmRowRange(const uint8_t* a, const int8_t* b,
                      const int32_t* colsum, const float* scale,
                      const float* bias, float a_scale, float* c,
                      int64_t i_begin, int64_t i_end, int64_t kp, int64_t n);

/// Full int8 dispatch: serial for small shapes, row-panel split over
/// the shared pool above kParallelFlops (span `tensor.gemm.int8`).
void Int8GemmDispatch(const uint8_t* a, const int8_t* b, const int32_t* colsum,
                      const float* scale, const float* bias, float a_scale,
                      float* c, int64_t m, int64_t kp, int64_t n);

/// Forced-scalar int8 kernel over the full row range: the semantic
/// (and bit-exact — the integer core is exact in every variant)
/// reference that parity tests and bench gates compare the dispatched
/// kernel against. Takes `b` in the canonical channel-major layout
/// regardless of what the dispatcher prefers.
void Int8GemmReference(const uint8_t* a, const int8_t* b,
                       const int32_t* colsum, const float* scale,
                       const float* bias, float a_scale, float* c, int64_t m,
                       int64_t kp, int64_t n);

/// Name of the fp32 target_clones variant the loader is expected to
/// resolve on this CPU ("x86-64-v4", "x86-64-v3" or "default";
/// suffixed "(sanitizer)" when clones are compiled out).
const char* GemmVariantName();

/// Name of the int8 kernel variant the runtime dispatcher selected
/// ("avx512-vnni", "avx2" or "scalar").
const char* Int8GemmVariantName();

}  // namespace internal

}  // namespace ba::tensor
