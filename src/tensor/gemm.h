#pragma once

#include <cstdint>

#include "tensor/tensor.h"

/// \file gemm.h
/// \brief Blocked, auto-vectorization-friendly GEMM kernels behind the
/// `MatMulValue` / `MatMulTransposeAValue` / `MatMulTransposeBValue`
/// entry points in tensor.h, plus the original scalar loops kept as
/// `MatMulReference*` for parity tests and bench baselines.
///
/// Kernel contract (see DESIGN.md §7):
///  - register tiling: MR×NR = 4×16 accumulator tile, B rows accessed
///    contiguously so the inner loop vectorizes without -ffast-math;
///  - one accumulation chain per output element, ascending over the
///    shared dimension — blocking and the row-panel thread split never
///    reorder a chain, so results are bit-identical at any thread
///    count (they may differ from the reference loops by FMA-
///    contraction rounding, which parity tests bound by tolerance);
///  - large shapes split into row panels over `util::SharedPool()`
///    unless the caller is already a pool worker (nested parallelism
///    degrades to serial rather than deadlocking).

namespace ba::tensor {

/// Pre-PR naive kernels, retained as the semantic reference.
Tensor MatMulReferenceValue(const Tensor& a, const Tensor& b);
Tensor MatMulReferenceTransposeAValue(const Tensor& a, const Tensor& b);
Tensor MatMulReferenceTransposeBValue(const Tensor& a, const Tensor& b);

namespace internal {

/// C(m,n) += A·B with A read through strides (`a[i*as_i + p*as_p]`,
/// covering both normal and transposed-A layouts) and B (k,n)
/// row-major. Rows [i_begin, i_end) of C are produced; C is assumed
/// zero-initialized in that range. Exposed for the bench harness and
/// kernel-level tests; model code goes through MatMul*Value.
void GemmRowRange(const float* a, int64_t as_i, int64_t as_p, const float* b,
                  float* c, int64_t i_begin, int64_t i_end, int64_t k,
                  int64_t n);

/// Full dispatch: serial for small shapes, row-panel split over
/// `util::SharedPool()` above kParallelFlops (with a `tensor.gemm`
/// span when tracing).
void GemmDispatch(const float* a, int64_t as_i, int64_t as_p, const float* b,
                  float* c, int64_t m, int64_t k, int64_t n);

/// m·k·n above which GemmDispatch fans row panels across the shared
/// pool (when not already inside a pool worker).
inline constexpr int64_t kParallelFlops = int64_t{1} << 21;

}  // namespace internal

}  // namespace ba::tensor
