#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

/// \file tensor.h
/// \brief Dense float32 tensor: the numeric value type beneath the
/// autograd engine and every neural model in this reproduction (GFN,
/// GCN, DiffPool, LSTM, MLP).
///
/// Tensors are row-major with value semantics; rank 0 (scalar), 1
/// (vector) and 2 (matrix) cover everything the paper's models need.

namespace ba::tensor {

/// \brief Dense row-major float32 tensor with value semantics.
class Tensor {
 public:
  /// Empty scalar (rank 0, one element, value 0).
  Tensor() : shape_{}, data_(1, 0.0f) {}

  /// Zero-filled tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
    data_.assign(static_cast<size_t>(ComputeNumel(shape_)), 0.0f);
  }

  /// Tensor with explicit contents; `data.size()` must match the shape.
  Tensor(std::vector<int64_t> shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    BA_CHECK_EQ(static_cast<int64_t>(data_.size()), ComputeNumel(shape_));
  }

  static Tensor Zeros(std::vector<int64_t> shape) {
    return Tensor(std::move(shape));
  }

  static Tensor Full(std::vector<int64_t> shape, float value) {
    Tensor t(std::move(shape));
    for (auto& v : t.data_) v = value;
    return t;
  }

  static Tensor Ones(std::vector<int64_t> shape) {
    return Full(std::move(shape), 1.0f);
  }

  /// Rank-0 scalar.
  static Tensor Scalar(float value) {
    Tensor t;
    t.data_[0] = value;
    return t;
  }

  /// Uniform random entries in [lo, hi).
  static Tensor RandomUniform(std::vector<int64_t> shape, Rng* rng,
                              float lo = -1.0f, float hi = 1.0f);

  /// Gaussian random entries.
  static Tensor RandomNormal(std::vector<int64_t> shape, Rng* rng,
                             float mean = 0.0f, float stddev = 1.0f);

  /// Xavier/Glorot uniform init for a (fan_in x fan_out) weight matrix.
  static Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng* rng);

  int64_t rank() const { return static_cast<int64_t>(shape_.size()); }

  int64_t dim(int64_t i) const {
    BA_CHECK_GE(i, 0);
    BA_CHECK_LT(i, rank());
    return shape_[static_cast<size_t>(i)];
  }

  const std::vector<int64_t>& shape() const { return shape_; }

  int64_t numel() const { return static_cast<int64_t>(data_.size()); }

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Scalar access; requires numel() == 1.
  float item() const {
    BA_CHECK_EQ(numel(), 1);
    return data_[0];
  }

  /// Element access for rank-2 tensors.
  float& at(int64_t r, int64_t c) {
    BA_CHECK_EQ(rank(), 2);
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }
  float at(int64_t r, int64_t c) const {
    BA_CHECK_EQ(rank(), 2);
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }

  /// Element access for rank-1 tensors.
  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// Returns a copy with the same data viewed under a new shape of
  /// equal element count.
  Tensor Reshaped(std::vector<int64_t> shape) const {
    Tensor out(std::move(shape), data_);
    return out;
  }

  /// In-place element-wise addition of a same-shaped tensor.
  void AddInPlace(const Tensor& other) {
    BA_CHECK(SameShape(other));
    for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  }

  /// In-place multiplication by a scalar.
  void ScaleInPlace(float s) {
    for (auto& v : data_) v *= s;
  }

  void Fill(float v) {
    for (auto& x : data_) x = v;
  }

  /// Sum of all elements.
  double Sum() const {
    double s = 0.0;
    for (float v : data_) s += v;
    return s;
  }

  /// Largest absolute element.
  float AbsMax() const {
    float m = 0.0f;
    for (float v : data_) m = std::max(m, std::abs(v));
    return m;
  }

  /// "Tensor([r, c]) [v0, v1, ...]" debug rendering (truncated).
  std::string ToString(int64_t max_elems = 16) const;

 private:
  static int64_t ComputeNumel(const std::vector<int64_t>& shape) {
    int64_t n = 1;
    for (int64_t d : shape) {
      BA_CHECK_GE(d, 0);
      n *= d;
    }
    return n;
  }

  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

/// Dense matrix product C = A·B for rank-2 tensors (m,k)x(k,n).
Tensor MatMulValue(const Tensor& a, const Tensor& b);

/// Dense product with A transposed: C = Aᵀ·B for (k,m)ᵀ x (k,n).
Tensor MatMulTransposeAValue(const Tensor& a, const Tensor& b);

/// Dense product with B transposed: C = A·Bᵀ for (m,k) x (n,k)ᵀ.
Tensor MatMulTransposeBValue(const Tensor& a, const Tensor& b);

}  // namespace ba::tensor
