#include "tensor/gemm.h"

#include <algorithm>
#include <cmath>
#include <vector>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace ba::tensor {

// ---------------------------------------------------------------------------
// Reference kernels: the original scalar triple loops, unchanged. These
// define the semantics the blocked kernels are tested against and give
// benches a stable pre-optimization baseline.
// ---------------------------------------------------------------------------

Tensor MatMulReferenceValue(const Tensor& a, const Tensor& b) {
  BA_CHECK_EQ(a.rank(), 2);
  BA_CHECK_EQ(b.rank(), 2);
  BA_CHECK_EQ(a.dim(1), b.dim(0));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = ad[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = bd + p * n;
      float* crow = cd + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulReferenceTransposeAValue(const Tensor& a, const Tensor& b) {
  BA_CHECK_EQ(a.rank(), 2);
  BA_CHECK_EQ(b.rank(), 2);
  BA_CHECK_EQ(a.dim(0), b.dim(0));
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = ad + p * m;
    const float* brow = bd + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = cd + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulReferenceTransposeBValue(const Tensor& a, const Tensor& b) {
  BA_CHECK_EQ(a.rank(), 2);
  BA_CHECK_EQ(b.rank(), 2);
  BA_CHECK_EQ(a.dim(1), b.dim(1));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = ad + i * k;
    float* crow = cd + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = bd + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
  return c;
}

// ---------------------------------------------------------------------------
// Blocked fp32 kernels.
// ---------------------------------------------------------------------------

namespace internal {

namespace {

/// Register tile: MR output rows × NR output columns held in
/// accumulators across the whole k loop. NR=16 floats is one AVX-512
/// or two AVX2 vectors; MR=4 keeps MR×NR within the 32-register
/// budget of the wide clones.
constexpr int64_t kMr = 4;
constexpr int64_t kNr = 16;

/// Runtime ISA dispatch: one portable binary, resolved once at load to
/// the widest clone the CPU supports (x86-64-v3 = AVX2+FMA,
/// x86-64-v4 = AVX-512). The clones contract mul+add into FMA, which
/// is why optimized-vs-reference parity is tolerance- not bit-based.
/// Disabled under sanitizers: the IFUNC resolvers target_clones emits
/// run before the sanitizer runtime initializes and segfault at load.
#if defined(__x86_64__) && defined(__GNUC__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define BA_GEMM_CLONES \
  __attribute__((target_clones("default", "arch=x86-64-v3", "arch=x86-64-v4")))
#define BA_GEMM_HAVE_CLONES 1
#else
#define BA_GEMM_CLONES
#define BA_GEMM_HAVE_CLONES 0
#endif

/// Full MR×NR tile over one k-chunk: `a` pre-offset to the tile's
/// first row, `b` pre-offset to (chunk row 0, column j) with rows n
/// apart, `c` pre-offset to (i, j). The chunk's contribution to each
/// output element accumulates over ascending p in a single register
/// chain; `accumulate` folds that chain into C for chunks after the
/// first — the chunk fold order is the serial chunk order, so
/// k-blocking never reorders an element's overall chain.
///
/// The A-loads are hoisted out of the jn loop and each output row gets
/// its own accumulator array: with a single acc[MR][NR] array GCC
/// fully unrolls the constant-bound jn loop first, leaving the strided
/// A-load innermost and giving up on vectorization ("complicated
/// access pattern"). In this form the innermost loop is a clean
/// broadcast-FMA over contiguous brow, and the clones vectorize it.
BA_GEMM_CLONES
void MicroKernelFull(const float* __restrict a, int64_t as_i, int64_t as_p,
                     const float* __restrict b, float* __restrict c,
                     int64_t k, int64_t n, bool accumulate) {
  float acc0[kNr] = {}, acc1[kNr] = {}, acc2[kNr] = {}, acc3[kNr] = {};
  for (int64_t p = 0; p < k; ++p) {
    const float* __restrict brow = b + p * n;
    const float a0 = a[0 * as_i + p * as_p];
    const float a1 = a[1 * as_i + p * as_p];
    const float a2 = a[2 * as_i + p * as_p];
    const float a3 = a[3 * as_i + p * as_p];
    for (int64_t jn = 0; jn < kNr; ++jn) {
      const float bv = brow[jn];
      acc0[jn] += a0 * bv;
      acc1[jn] += a1 * bv;
      acc2[jn] += a2 * bv;
      acc3[jn] += a3 * bv;
    }
  }
  if (accumulate) {
    for (int64_t jn = 0; jn < kNr; ++jn) c[0 * n + jn] += acc0[jn];
    for (int64_t jn = 0; jn < kNr; ++jn) c[1 * n + jn] += acc1[jn];
    for (int64_t jn = 0; jn < kNr; ++jn) c[2 * n + jn] += acc2[jn];
    for (int64_t jn = 0; jn < kNr; ++jn) c[3 * n + jn] += acc3[jn];
  } else {
    for (int64_t jn = 0; jn < kNr; ++jn) c[0 * n + jn] = acc0[jn];
    for (int64_t jn = 0; jn < kNr; ++jn) c[1 * n + jn] = acc1[jn];
    for (int64_t jn = 0; jn < kNr; ++jn) c[2 * n + jn] = acc2[jn];
    for (int64_t jn = 0; jn < kNr; ++jn) c[3 * n + jn] = acc3[jn];
  }
}

/// Ragged edge tile (mr ≤ MR, nr ≤ NR): same shape as the full tile —
/// absent rows contribute a broadcast of 0 — with a runtime jn bound.
/// Same per-element accumulation order; only tiles on the bottom/right
/// fringe (and the 1×k / k×1 degenerate cases) land here.
BA_GEMM_CLONES
void MicroKernelEdge(const float* __restrict a, int64_t as_i, int64_t as_p,
                     const float* __restrict b, float* __restrict c,
                     int64_t k, int64_t n, int64_t mr, int64_t nr,
                     bool accumulate) {
  float acc0[kNr] = {}, acc1[kNr] = {}, acc2[kNr] = {}, acc3[kNr] = {};
  for (int64_t p = 0; p < k; ++p) {
    const float* __restrict brow = b + p * n;
    const float a0 = a[0 * as_i + p * as_p];
    const float a1 = mr > 1 ? a[1 * as_i + p * as_p] : 0.0f;
    const float a2 = mr > 2 ? a[2 * as_i + p * as_p] : 0.0f;
    const float a3 = mr > 3 ? a[3 * as_i + p * as_p] : 0.0f;
    for (int64_t jn = 0; jn < nr; ++jn) {
      const float bv = brow[jn];
      acc0[jn] += a0 * bv;
      acc1[jn] += a1 * bv;
      acc2[jn] += a2 * bv;
      acc3[jn] += a3 * bv;
    }
  }
  const float* const accs[kMr] = {acc0, acc1, acc2, acc3};
  for (int64_t im = 0; im < mr; ++im) {
    float* __restrict crow = c + im * n;
    if (accumulate) {
      for (int64_t jn = 0; jn < nr; ++jn) crow[jn] += accs[im][jn];
    } else {
      for (int64_t jn = 0; jn < nr; ++jn) crow[jn] = accs[im][jn];
    }
  }
}

/// Square sub-block edge used when packing a strided A chunk: small
/// enough that the strided reads and the unit-stride writes both stay
/// within L1 lines.
constexpr int64_t kPackBlk = 32;

}  // namespace

void GemmRowRange(const float* a, int64_t as_i, int64_t as_p, const float* b,
                  float* c, int64_t i_begin, int64_t i_end, int64_t k,
                  int64_t n) {
  // Scratch for the packed A panel of the transposed-A layout. One
  // panel per worker thread; sized rows×kKc and reused across calls.
  thread_local std::vector<float> packed;
  const bool pack_a = as_p != 1;
  const int64_t rows = i_end - i_begin;
  // k-chunks outer: each chunk touches an A slab of rows×kc floats
  // plus one B column panel at a time, so the resident set stays in L2
  // for 512³+ products instead of thrashing a full k-deep A.
  for (int64_t p0 = 0; p0 < k; p0 += kKc) {
    const int64_t kc = std::min(kKc, k - p0);
    const bool accumulate = p0 > 0;
    const float* achunk;
    int64_t cas_i, cas_p;
    if (pack_a) {
      // Pack A[i_begin:i_end, p0:p0+kc] into a contiguous row-major
      // micro-panel in kPackBlk² sub-blocks (the source reads are
      // i-contiguous for the transposed layout, the destination writes
      // p-contiguous; blocking keeps both footprints in L1).
      packed.resize(static_cast<size_t>(rows) * kc);
      float* dst = packed.data();
      for (int64_t pb = 0; pb < kc; pb += kPackBlk) {
        const int64_t pe = std::min(pb + kPackBlk, kc);
        for (int64_t ib = 0; ib < rows; ib += kPackBlk) {
          const int64_t ie = std::min(ib + kPackBlk, rows);
          for (int64_t p = pb; p < pe; ++p) {
            const float* src = a + (p0 + p) * as_p + i_begin * as_i;
            for (int64_t i = ib; i < ie; ++i)
              dst[i * kc + p] = src[i * as_i];
          }
        }
      }
      achunk = dst;
      cas_i = kc;
      cas_p = 1;
    } else {
      achunk = a + i_begin * as_i + p0;
      cas_i = as_i;
      cas_p = 1;
    }
    const float* bchunk = b + p0 * n;
    // Column panels outer: the NR-wide slice of B streams through
    // cache once per row sweep instead of once per row.
    for (int64_t j = 0; j < n; j += kNr) {
      const int64_t nr = std::min(kNr, n - j);
      for (int64_t i = i_begin; i < i_end; i += kMr) {
        const int64_t mr = std::min(kMr, i_end - i);
        const float* atile = achunk + (i - i_begin) * cas_i;
        if (mr == kMr && nr == kNr) {
          MicroKernelFull(atile, cas_i, cas_p, bchunk + j, c + i * n + j, kc,
                          n, accumulate);
        } else {
          MicroKernelEdge(atile, cas_i, cas_p, bchunk + j, c + i * n + j, kc,
                          n, mr, nr, accumulate);
        }
      }
    }
  }
}

void GemmDispatch(const float* a, int64_t as_i, int64_t as_p, const float* b,
                  float* c, int64_t m, int64_t k, int64_t n) {
  if (m == 0 || n == 0 || k == 0) return;  // C stays zero
  const int64_t flops = m * k * n;
  if (flops >= kParallelFlops && m > kMr && !ThreadPool::InWorkerThread()) {
    ThreadPool& pool = util::SharedPool();
    if (pool.num_threads() > 1) {
      // Row panels in tile multiples; each worker writes a disjoint
      // slab of C and every accumulation chain is identical to the
      // serial sweep, so the split is bit-exact at any thread count.
      const int64_t panel_rows =
          ((m + static_cast<int64_t>(pool.num_threads()) - 1) /
               static_cast<int64_t>(pool.num_threads()) +
           kMr - 1) /
          kMr * kMr;
      const size_t panels =
          static_cast<size_t>((m + panel_rows - 1) / panel_rows);
      obs::ScopedSpan gemm_span("tensor.gemm");
      gemm_span.AddArg("m", static_cast<double>(m));
      gemm_span.AddArg("k", static_cast<double>(k));
      gemm_span.AddArg("n", static_cast<double>(n));
      gemm_span.AddArg("panels", static_cast<double>(panels));
      pool.ParallelFor(panels, [&](size_t pi) {
        const int64_t i_begin = static_cast<int64_t>(pi) * panel_rows;
        const int64_t i_end = std::min(m, i_begin + panel_rows);
        GemmRowRange(a, as_i, as_p, b, c, i_begin, i_end, k, n);
      });
      return;
    }
  }
  GemmRowRange(a, as_i, as_p, b, c, 0, m, k, n);
}

const char* GemmVariantName() {
#if !BA_GEMM_HAVE_CLONES
  return "default (sanitizer)";
#else
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512cd") && __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl")) {
    return "x86-64-v4";
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
      __builtin_cpu_supports("bmi2")) {
    return "x86-64-v3";
  }
  return "default";
#endif
}

// ---------------------------------------------------------------------------
// Int8 kernels. All variants compute the identical exact int32 dot
// products (u8 in [1,255] × s8 in [-127,127] over kp ≤ 2³¹/(255·127)
// cannot wrap, and the AVX2 16-bit widening path keeps every partial
// in range), so which one the dispatcher picks is unobservable.
// ---------------------------------------------------------------------------

namespace {

/// Fused epilogue shared by every variant: zero-point compensation,
/// per-channel dequant, bias, in the exact algebra and rounding the
/// VNNI vector epilogue uses — float(acc)·mult fma'd onto
/// (bias − 128·colsum·mult). std::fmaf is correctly rounded (single
/// rounding), so scalar and vector variants stay bit-identical.
inline float Int8Dequant(int32_t acc, int32_t colsum, float scale,
                         const float* bias, int64_t j, float a_scale) {
  const float mult = a_scale * scale;
  // −128·colsum is exact in float (|colsum| ≤ 127·kp keeps it under
  // 2²⁴); both fmas are explicit so -ffp-contract can't change the
  // rounding between ISA variants.
  const float add = std::fmaf(-128.0f * static_cast<float>(colsum), mult,
                              bias != nullptr ? bias[j] : 0.0f);
  return std::fmaf(static_cast<float>(acc), mult, add);
}

void Int8KernelScalar(const uint8_t* a, const int8_t* b, const int32_t* colsum,
                      const float* scale, const float* bias, float a_scale,
                      float* c, int64_t i_begin, int64_t i_end, int64_t kp,
                      int64_t n) {
  for (int64_t i = i_begin; i < i_end; ++i) {
    const uint8_t* arow = a + i * kp;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const int8_t* bcol = b + j * kp;
      int32_t acc = 0;
      for (int64_t p = 0; p < kp; ++p)
        acc += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(bcol[p]);
      crow[j] = Int8Dequant(acc, colsum[j], scale[j], bias, j, a_scale);
    }
  }
}

#if defined(__x86_64__) && defined(__GNUC__)

// GCC's _mm512_reduce_add_epi32 expands through
// _mm256_undefined_si256(), which -Wmaybe-uninitialized flags inside
// the intrinsic header; the lanes are fully written before any read.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

/// Exact AVX2 path: widen u8/s8 halves to i16 and pair-sum with
/// vpmaddwd. Each product ≤ 255·127 fits i16-range inputs' i32
/// product, and each vpmaddwd pair sum ≤ 2·255·127 fits i32, so no
/// saturation anywhere.
__attribute__((target("avx2")))
void Int8KernelAvx2(const uint8_t* a, const int8_t* b, const int32_t* colsum,
                    const float* scale, const float* bias, float a_scale,
                    float* c, int64_t i_begin, int64_t i_end, int64_t kp,
                    int64_t n) {
  for (int64_t i = i_begin; i < i_end; ++i) {
    const uint8_t* arow = a + i * kp;
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const int8_t* bcol = b + j * kp;
      __m256i acc = _mm256_setzero_si256();
      for (int64_t p = 0; p < kp; p += 32) {
        const __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arow + p));
        const __m256i bv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bcol + p));
        const __m256i a_lo =
            _mm256_cvtepu8_epi16(_mm256_castsi256_si128(av));
        const __m256i a_hi =
            _mm256_cvtepu8_epi16(_mm256_extracti128_si256(av, 1));
        const __m256i b_lo =
            _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bv));
        const __m256i b_hi =
            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(bv, 1));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
      }
      const __m128i lo = _mm256_castsi256_si128(acc);
      const __m128i hi = _mm256_extracti128_si256(acc, 1);
      __m128i sum = _mm_add_epi32(lo, hi);
      sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(1, 0, 3, 2)));
      sum = _mm_add_epi32(sum, _mm_shuffle_epi32(sum, _MM_SHUFFLE(2, 3, 0, 1)));
      crow[j] = Int8Dequant(_mm_cvtsi128_si32(sum), colsum[j], scale[j], bias,
                            j, a_scale);
    }
  }
}

/// Columns per interleaved VNNI panel: one zmm of i32 lanes.
constexpr int64_t kVnniPanel = 16;

/// AVX-512 VNNI path over the interleaved layout Int8KernelPackedB
/// builds: panel jb holds, for each group of 4 k-bytes, the 16
/// columns' 4 codes side by side, so a single register load pairs with
/// a 4-byte broadcast of an A row in vpdpbusd (64 u8×s8 MACs per
/// instruction) and each accumulator lane is one output column — the
/// dequant epilogue is a vector cvt+fma+masked-store with no
/// horizontal reductions anywhere.
__attribute__((target("avx512f,avx512bw,avx512vl,avx512vnni")))
void Int8KernelVnni(const uint8_t* a, const int8_t* b, const int32_t* colsum,
                    const float* scale, const float* bias, float a_scale,
                    float* c, int64_t i_begin, int64_t i_end, int64_t kp,
                    int64_t n) {
  constexpr int64_t kTileM = 4;
  for (int64_t j = 0; j < n; j += kVnniPanel) {
    const int64_t jw = std::min(kVnniPanel, n - j);
    const __mmask16 mask = static_cast<__mmask16>((1u << jw) - 1);
    const int8_t* bpanel = b + (j / kVnniPanel) * kVnniPanel * kp;
    // Per-panel dequant vectors: y = acc·mult + add with
    // mult_j = s_a·scale_j and add_j = bias_j − 128·colsum_j·mult_j.
    alignas(64) float mult[kVnniPanel] = {};
    alignas(64) float addv[kVnniPanel] = {};
    for (int64_t jj = 0; jj < jw; ++jj) {
      mult[jj] = a_scale * scale[j + jj];
      // Same explicit-fma algebra as Int8Dequant — keeps every ISA
      // variant bit-identical under -ffp-contract=fast.
      addv[jj] =
          std::fmaf(-128.0f * static_cast<float>(colsum[j + jj]), mult[jj],
                    bias != nullptr ? bias[j + jj] : 0.0f);
    }
    const __m512 multv = _mm512_load_ps(mult);
    const __m512 addvv = _mm512_load_ps(addv);
    int64_t i = i_begin;
    for (; i + kTileM <= i_end; i += kTileM) {
      __m512i acc0 = _mm512_setzero_si512(), acc1 = _mm512_setzero_si512();
      __m512i acc2 = _mm512_setzero_si512(), acc3 = _mm512_setzero_si512();
      const uint8_t* a0 = a + (i + 0) * kp;
      const uint8_t* a1 = a + (i + 1) * kp;
      const uint8_t* a2 = a + (i + 2) * kp;
      const uint8_t* a3 = a + (i + 3) * kp;
      for (int64_t p = 0; p < kp; p += 4) {
        const __m512i bv =
            _mm512_loadu_si512(bpanel + p * kVnniPanel);
        acc0 = _mm512_dpbusd_epi32(
            acc0, _mm512_set1_epi32(*reinterpret_cast<const int32_t*>(a0 + p)),
            bv);
        acc1 = _mm512_dpbusd_epi32(
            acc1, _mm512_set1_epi32(*reinterpret_cast<const int32_t*>(a1 + p)),
            bv);
        acc2 = _mm512_dpbusd_epi32(
            acc2, _mm512_set1_epi32(*reinterpret_cast<const int32_t*>(a2 + p)),
            bv);
        acc3 = _mm512_dpbusd_epi32(
            acc3, _mm512_set1_epi32(*reinterpret_cast<const int32_t*>(a3 + p)),
            bv);
      }
      _mm512_mask_storeu_ps(
          c + (i + 0) * n + j, mask,
          _mm512_fmadd_ps(_mm512_cvtepi32_ps(acc0), multv, addvv));
      _mm512_mask_storeu_ps(
          c + (i + 1) * n + j, mask,
          _mm512_fmadd_ps(_mm512_cvtepi32_ps(acc1), multv, addvv));
      _mm512_mask_storeu_ps(
          c + (i + 2) * n + j, mask,
          _mm512_fmadd_ps(_mm512_cvtepi32_ps(acc2), multv, addvv));
      _mm512_mask_storeu_ps(
          c + (i + 3) * n + j, mask,
          _mm512_fmadd_ps(_mm512_cvtepi32_ps(acc3), multv, addvv));
    }
    for (; i < i_end; ++i) {
      __m512i acc = _mm512_setzero_si512();
      const uint8_t* ar = a + i * kp;
      for (int64_t p = 0; p < kp; p += 4) {
        acc = _mm512_dpbusd_epi32(
            acc, _mm512_set1_epi32(*reinterpret_cast<const int32_t*>(ar + p)),
            _mm512_loadu_si512(bpanel + p * kVnniPanel));
      }
      _mm512_mask_storeu_ps(
          c + i * n + j, mask,
          _mm512_fmadd_ps(_mm512_cvtepi32_ps(acc), multv, addvv));
    }
  }
}

/// Widens one activation row to the u8 zero-point-128 grid, 16 floats
/// per iteration. The clamp/±0.5/truncate sequence mirrors the scalar
/// path exactly (half-away-from-zero), so both variants produce
/// identical codes.
__attribute__((target("avx512f,avx512bw,avx512vl")))
void Int8QuantizeRowAvx512(const float* row, uint8_t* out, int64_t k,
                           float inv_scale) {
  const __m512 vinv = _mm512_set1_ps(inv_scale);
  const __m512 vlo = _mm512_set1_ps(-127.0f);
  const __m512 vhi = _mm512_set1_ps(127.0f);
  const __m512i sign_bit = _mm512_set1_epi32(INT32_MIN);
  const __m512i half_bits = _mm512_castps_si512(_mm512_set1_ps(0.5f));
  const __m512i v128 = _mm512_set1_epi32(128);
  int64_t p = 0;
  for (; p + 16 <= k; p += 16) {
    __m512 v = _mm512_mul_ps(_mm512_loadu_ps(row + p), vinv);
    v = _mm512_min_ps(vhi, _mm512_max_ps(vlo, v));
    const __m512i sign = _mm512_and_si512(_mm512_castps_si512(v), sign_bit);
    const __m512 half = _mm512_castsi512_ps(_mm512_or_si512(half_bits, sign));
    const __m512i q = _mm512_add_epi32(
        _mm512_cvttps_epi32(_mm512_add_ps(v, half)), v128);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + p),
                     _mm512_cvtepi32_epi8(q));
  }
  if (p < k) {
    const __mmask16 mask = static_cast<__mmask16>((1u << (k - p)) - 1);
    __m512 v = _mm512_mul_ps(_mm512_maskz_loadu_ps(mask, row + p), vinv);
    v = _mm512_min_ps(vhi, _mm512_max_ps(vlo, v));
    const __m512i sign = _mm512_and_si512(_mm512_castps_si512(v), sign_bit);
    const __m512 half = _mm512_castsi512_ps(_mm512_or_si512(half_bits, sign));
    const __m512i q = _mm512_add_epi32(
        _mm512_cvttps_epi32(_mm512_add_ps(v, half)), v128);
    _mm512_mask_cvtepi32_storeu_epi8(out + p, mask, q);
  }
}

#pragma GCC diagnostic pop

#endif  // defined(__x86_64__) && defined(__GNUC__)

/// Scalar activation-row quantizer; the semantic definition every wide
/// variant matches bit for bit.
void Int8QuantizeRowScalar(const float* row, uint8_t* out, int64_t k,
                           float inv_scale) {
  for (int64_t p = 0; p < k; ++p) {
    float v = row[p] * inv_scale;
    v = v < -127.0f ? -127.0f : (v > 127.0f ? 127.0f : v);
    const float r = v >= 0.0f ? v + 0.5f : v - 0.5f;
    out[p] = static_cast<uint8_t>(static_cast<int32_t>(r) + 128);
  }
}

using Int8Kernel = void (*)(const uint8_t*, const int8_t*, const int32_t*,
                            const float*, const float*, float, float*, int64_t,
                            int64_t, int64_t, int64_t);
using Int8QuantizeRowFn = void (*)(const float*, uint8_t*, int64_t, float);

struct Int8Dispatch {
  Int8Kernel fn;
  Int8QuantizeRowFn quantize_row;
  const char* name;
  /// True when `fn` consumes the interleaved Int8KernelPackedB layout
  /// instead of the canonical channel-major one.
  bool interleaved_b;
};

/// Manual function-pointer dispatch (not target_clones/ifunc: the int8
/// family must stay dispatchable under sanitizers, where ifunc
/// resolvers run before the sanitizer runtime initializes). Safe here
/// precisely because every variant is bit-identical.
const Int8Dispatch& GetInt8Dispatch() {
  static const Int8Dispatch d = [] {
#if defined(__x86_64__) && defined(__GNUC__)
    if (__builtin_cpu_supports("avx512vnni") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl")) {
      return Int8Dispatch{Int8KernelVnni, Int8QuantizeRowAvx512, "avx512-vnni",
                          /*interleaved_b=*/true};
    }
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("avx2")) {
      return Int8Dispatch{Int8KernelAvx2, Int8QuantizeRowAvx512,
                          "avx2+avx512-quant", /*interleaved_b=*/false};
    }
    if (__builtin_cpu_supports("avx2")) {
      return Int8Dispatch{Int8KernelAvx2, Int8QuantizeRowScalar, "avx2",
                          /*interleaved_b=*/false};
    }
#endif
    return Int8Dispatch{Int8KernelScalar, Int8QuantizeRowScalar, "scalar",
                        /*interleaved_b=*/false};
  }();
  return d;
}

/// Largest kp for which the int32 accumulator provably cannot wrap:
/// kp · 255 · 127 ≤ INT32_MAX.
constexpr int64_t kInt8MaxK = INT32_MAX / (255 * 127);

}  // namespace

std::vector<int8_t> Int8KernelPackedB(const int8_t* canonical, int64_t n,
                                      int64_t kp) {
  if (!GetInt8Dispatch().interleaved_b) return {};
  constexpr int64_t kPanel = 16;  // kVnniPanel
  const int64_t panels = (n + kPanel - 1) / kPanel;
  std::vector<int8_t> out(static_cast<size_t>(panels * kPanel * kp), 0);
  for (int64_t j = 0; j < n; ++j) {
    const int64_t jb = j / kPanel, jj = j % kPanel;
    const int8_t* src = canonical + j * kp;
    int8_t* dst = out.data() + jb * kPanel * kp + jj * 4;
    // Group p in fours: dst layout per panel is [p/4][column][p%4].
    for (int64_t p = 0; p < kp; ++p) dst[(p / 4) * kPanel * 4 + (p % 4)] = src[p];
  }
  return out;
}

void Int8QuantizeRow(const float* row, uint8_t* out, int64_t k,
                     float inv_scale) {
  GetInt8Dispatch().quantize_row(row, out, k, inv_scale);
}

void Int8GemmRowRange(const uint8_t* a, const int8_t* b,
                      const int32_t* colsum, const float* scale,
                      const float* bias, float a_scale, float* c,
                      int64_t i_begin, int64_t i_end, int64_t kp, int64_t n) {
  GetInt8Dispatch().fn(a, b, colsum, scale, bias, a_scale, c, i_begin, i_end,
                       kp, n);
}

void Int8GemmDispatch(const uint8_t* a, const int8_t* b, const int32_t* colsum,
                      const float* scale, const float* bias, float a_scale,
                      float* c, int64_t m, int64_t kp, int64_t n) {
  if (m == 0 || n == 0) return;
  BA_CHECK_EQ(kp % kInt8KAlign, 0);
  BA_CHECK_LE(kp, kInt8MaxK);
  const int64_t ops = m * kp * n;
  if (ops >= kParallelFlops && m > kMr && !ThreadPool::InWorkerThread()) {
    ThreadPool& pool = util::SharedPool();
    if (pool.num_threads() > 1) {
      const int64_t panel_rows =
          ((m + static_cast<int64_t>(pool.num_threads()) - 1) /
               static_cast<int64_t>(pool.num_threads()) +
           kMr - 1) /
          kMr * kMr;
      const size_t panels =
          static_cast<size_t>((m + panel_rows - 1) / panel_rows);
      obs::ScopedSpan gemm_span("tensor.gemm.int8");
      gemm_span.AddArg("m", static_cast<double>(m));
      gemm_span.AddArg("kp", static_cast<double>(kp));
      gemm_span.AddArg("n", static_cast<double>(n));
      gemm_span.AddArg("panels", static_cast<double>(panels));
      pool.ParallelFor(panels, [&](size_t pi) {
        const int64_t i_begin = static_cast<int64_t>(pi) * panel_rows;
        const int64_t i_end = std::min(m, i_begin + panel_rows);
        Int8GemmRowRange(a, b, colsum, scale, bias, a_scale, c, i_begin, i_end,
                         kp, n);
      });
      return;
    }
  }
  Int8GemmRowRange(a, b, colsum, scale, bias, a_scale, c, 0, m, kp, n);
}

void Int8GemmReference(const uint8_t* a, const int8_t* b,
                       const int32_t* colsum, const float* scale,
                       const float* bias, float a_scale, float* c, int64_t m,
                       int64_t kp, int64_t n) {
  Int8KernelScalar(a, b, colsum, scale, bias, a_scale, c, 0, m, kp, n);
}

const char* Int8GemmVariantName() { return GetInt8Dispatch().name; }

}  // namespace internal

}  // namespace ba::tensor
