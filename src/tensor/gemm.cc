#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace ba::tensor {

// ---------------------------------------------------------------------------
// Reference kernels: the original scalar triple loops, unchanged. These
// define the semantics the blocked kernels are tested against and give
// benches a stable pre-optimization baseline.
// ---------------------------------------------------------------------------

Tensor MatMulReferenceValue(const Tensor& a, const Tensor& b) {
  BA_CHECK_EQ(a.rank(), 2);
  BA_CHECK_EQ(b.rank(), 2);
  BA_CHECK_EQ(a.dim(1), b.dim(0));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = ad[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = bd + p * n;
      float* crow = cd + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulReferenceTransposeAValue(const Tensor& a, const Tensor& b) {
  BA_CHECK_EQ(a.rank(), 2);
  BA_CHECK_EQ(b.rank(), 2);
  BA_CHECK_EQ(a.dim(0), b.dim(0));
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = ad + p * m;
    const float* brow = bd + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = cd + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulReferenceTransposeBValue(const Tensor& a, const Tensor& b) {
  BA_CHECK_EQ(a.rank(), 2);
  BA_CHECK_EQ(b.rank(), 2);
  BA_CHECK_EQ(a.dim(1), b.dim(1));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = ad + i * k;
    float* crow = cd + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = bd + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
  return c;
}

// ---------------------------------------------------------------------------
// Blocked kernels.
// ---------------------------------------------------------------------------

namespace internal {

namespace {

/// Register tile: MR output rows × NR output columns held in
/// accumulators across the whole k loop. NR=16 floats is one AVX-512
/// or two AVX2 vectors; MR=4 keeps MR×NR within the 32-register
/// budget of the wide clones.
constexpr int64_t kMr = 4;
constexpr int64_t kNr = 16;

/// Runtime ISA dispatch: one portable binary, resolved once at load to
/// the widest clone the CPU supports (x86-64-v3 = AVX2+FMA,
/// x86-64-v4 = AVX-512). The clones contract mul+add into FMA, which
/// is why optimized-vs-reference parity is tolerance- not bit-based.
/// Disabled under sanitizers: the IFUNC resolvers target_clones emits
/// run before the sanitizer runtime initializes and segfault at load.
#if defined(__x86_64__) && defined(__GNUC__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define BA_GEMM_CLONES \
  __attribute__((target_clones("default", "arch=x86-64-v3", "arch=x86-64-v4")))
#else
#define BA_GEMM_CLONES
#endif

/// Full MR×NR tile: `a` pre-offset to the tile's first row, `b`
/// pre-offset to column j (rows remain n apart), `c` pre-offset to
/// (i, j). Accumulates each output element over ascending p in a
/// single chain — the determinism anchor for the whole kernel layer.
///
/// The A-loads are hoisted out of the jn loop and each output row gets
/// its own accumulator array: with a single acc[MR][NR] array GCC
/// fully unrolls the constant-bound jn loop first, leaving the strided
/// A-load innermost and giving up on vectorization ("complicated
/// access pattern"). In this form the innermost loop is a clean
/// broadcast-FMA over contiguous brow, and the clones vectorize it.
BA_GEMM_CLONES
void MicroKernelFull(const float* __restrict a, int64_t as_i, int64_t as_p,
                     const float* __restrict b, float* __restrict c,
                     int64_t k, int64_t n) {
  float acc0[kNr] = {}, acc1[kNr] = {}, acc2[kNr] = {}, acc3[kNr] = {};
  for (int64_t p = 0; p < k; ++p) {
    const float* __restrict brow = b + p * n;
    const float a0 = a[0 * as_i + p * as_p];
    const float a1 = a[1 * as_i + p * as_p];
    const float a2 = a[2 * as_i + p * as_p];
    const float a3 = a[3 * as_i + p * as_p];
    for (int64_t jn = 0; jn < kNr; ++jn) {
      const float bv = brow[jn];
      acc0[jn] += a0 * bv;
      acc1[jn] += a1 * bv;
      acc2[jn] += a2 * bv;
      acc3[jn] += a3 * bv;
    }
  }
  for (int64_t jn = 0; jn < kNr; ++jn) c[0 * n + jn] = acc0[jn];
  for (int64_t jn = 0; jn < kNr; ++jn) c[1 * n + jn] = acc1[jn];
  for (int64_t jn = 0; jn < kNr; ++jn) c[2 * n + jn] = acc2[jn];
  for (int64_t jn = 0; jn < kNr; ++jn) c[3 * n + jn] = acc3[jn];
}

/// Ragged edge tile (mr ≤ MR, nr ≤ NR): same shape as the full tile —
/// absent rows contribute a broadcast of 0 — with a runtime jn bound.
/// Same per-element accumulation order; only tiles on the bottom/right
/// fringe (and the 1×k / k×1 degenerate cases) land here.
BA_GEMM_CLONES
void MicroKernelEdge(const float* __restrict a, int64_t as_i, int64_t as_p,
                     const float* __restrict b, float* __restrict c,
                     int64_t k, int64_t n, int64_t mr, int64_t nr) {
  float acc0[kNr] = {}, acc1[kNr] = {}, acc2[kNr] = {}, acc3[kNr] = {};
  for (int64_t p = 0; p < k; ++p) {
    const float* __restrict brow = b + p * n;
    const float a0 = a[0 * as_i + p * as_p];
    const float a1 = mr > 1 ? a[1 * as_i + p * as_p] : 0.0f;
    const float a2 = mr > 2 ? a[2 * as_i + p * as_p] : 0.0f;
    const float a3 = mr > 3 ? a[3 * as_i + p * as_p] : 0.0f;
    for (int64_t jn = 0; jn < nr; ++jn) {
      const float bv = brow[jn];
      acc0[jn] += a0 * bv;
      acc1[jn] += a1 * bv;
      acc2[jn] += a2 * bv;
      acc3[jn] += a3 * bv;
    }
  }
  const float* const accs[kMr] = {acc0, acc1, acc2, acc3};
  for (int64_t im = 0; im < mr; ++im) {
    float* __restrict crow = c + im * n;
    for (int64_t jn = 0; jn < nr; ++jn) crow[jn] = accs[im][jn];
  }
}

}  // namespace

void GemmRowRange(const float* a, int64_t as_i, int64_t as_p, const float* b,
                  float* c, int64_t i_begin, int64_t i_end, int64_t k,
                  int64_t n) {
  // Column panels outer: the NR-wide slice of B streams through cache
  // once per row sweep instead of once per row.
  for (int64_t j = 0; j < n; j += kNr) {
    const int64_t nr = std::min(kNr, n - j);
    for (int64_t i = i_begin; i < i_end; i += kMr) {
      const int64_t mr = std::min(kMr, i_end - i);
      if (mr == kMr && nr == kNr) {
        MicroKernelFull(a + i * as_i, as_i, as_p, b + j, c + i * n + j, k, n);
      } else {
        MicroKernelEdge(a + i * as_i, as_i, as_p, b + j, c + i * n + j, k, n,
                        mr, nr);
      }
    }
  }
}

void GemmDispatch(const float* a, int64_t as_i, int64_t as_p, const float* b,
                  float* c, int64_t m, int64_t k, int64_t n) {
  if (m == 0 || n == 0 || k == 0) return;  // C stays zero
  const int64_t flops = m * k * n;
  if (flops >= kParallelFlops && m > kMr && !ThreadPool::InWorkerThread()) {
    ThreadPool& pool = util::SharedPool();
    if (pool.num_threads() > 1) {
      // Row panels in tile multiples; each worker writes a disjoint
      // slab of C and every accumulation chain is identical to the
      // serial sweep, so the split is bit-exact at any thread count.
      const int64_t panel_rows =
          ((m + static_cast<int64_t>(pool.num_threads()) - 1) /
               static_cast<int64_t>(pool.num_threads()) +
           kMr - 1) /
          kMr * kMr;
      const size_t panels =
          static_cast<size_t>((m + panel_rows - 1) / panel_rows);
      obs::ScopedSpan gemm_span("tensor.gemm");
      gemm_span.AddArg("m", static_cast<double>(m));
      gemm_span.AddArg("k", static_cast<double>(k));
      gemm_span.AddArg("n", static_cast<double>(n));
      gemm_span.AddArg("panels", static_cast<double>(panels));
      pool.ParallelFor(panels, [&](size_t pi) {
        const int64_t i_begin = static_cast<int64_t>(pi) * panel_rows;
        const int64_t i_end = std::min(m, i_begin + panel_rows);
        GemmRowRange(a, as_i, as_p, b, c, i_begin, i_end, k, n);
      });
      return;
    }
  }
  GemmRowRange(a, as_i, as_p, b, c, 0, m, k, n);
}

}  // namespace internal

}  // namespace ba::tensor
