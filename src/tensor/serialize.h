#pragma once

#include <string>
#include <vector>

#include "tensor/autograd.h"
#include "util/status.h"

/// \file serialize.h
/// \brief Binary parameter checkpointing: save the tensors of a trained
/// model and load them back into a freshly constructed model of the
/// same architecture.
///
/// Format: "BATN" magic + version, tensor count, then per tensor the
/// rank, dimensions and raw float32 payload. Shapes are verified on
/// load, so architecture mismatches fail loudly instead of corrupting
/// weights.

namespace ba::tensor {

/// \brief Writes the values of `params` to `path`.
Status SaveParameters(const std::vector<Var>& params,
                      const std::string& path);

/// \brief Loads parameters saved by SaveParameters into `params`
/// (in-place). Fails unless count and every shape match exactly.
Status LoadParameters(const std::vector<Var>& params,
                      const std::string& path);

}  // namespace ba::tensor
