#pragma once

#include <string>
#include <vector>

#include "tensor/autograd.h"
#include "util/status.h"

/// \file serialize.h
/// \brief Binary parameter checkpointing: save the tensors of a trained
/// model and load them back into a freshly constructed model of the
/// same architecture.
///
/// Format v2: "BATN" magic + version, tensor count, then per tensor the
/// rank, dimensions and raw float32 payload, closed by a CRC32 trailer
/// over every preceding byte. Files are written atomically (tmp +
/// rename), so a killed save never leaves a torn checkpoint. On load,
/// shapes are verified and the CRC re-checked: architecture mismatches,
/// truncation and bit-flips all fail with a descriptive Status instead
/// of corrupting weights. Version-1 files (no trailer) still load.

namespace ba::tensor {

/// \brief Renders `params` as a self-contained BATN v2 image (magic,
/// version, tensor records, CRC32 trailer) — the byte-exact content
/// SaveParameters writes to disk. Container formats (e.g. the
/// BaClassifier "BACL" checkpoint) embed this image verbatim.
std::string SerializeParameters(const std::vector<Var>& params);

/// \brief Parses a BATN image produced by SerializeParameters (or read
/// back from a SaveParameters file) into `params` in-place. Fails with
/// a descriptive Status unless magic, CRC, count and every shape match;
/// `context` names the source in error messages (e.g. the file path).
Status DeserializeParameters(const std::vector<Var>& params,
                             const std::string& image,
                             const std::string& context);

/// \brief Writes the values of `params` to `path`.
Status SaveParameters(const std::vector<Var>& params,
                      const std::string& path);

/// \brief Loads parameters saved by SaveParameters into `params`
/// (in-place). Fails unless count and every shape match exactly.
Status LoadParameters(const std::vector<Var>& params,
                      const std::string& path);

}  // namespace ba::tensor
