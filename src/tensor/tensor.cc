#include "tensor/tensor.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "tensor/gemm.h"

namespace ba::tensor {

Tensor Tensor::RandomUniform(std::vector<int64_t> shape, Rng* rng, float lo,
                             float hi) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::RandomNormal(std::vector<int64_t> shape, Rng* rng, float mean,
                            float stddev) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng->Gaussian(mean, stddev));
  }
  return t;
}

Tensor Tensor::XavierUniform(int64_t fan_in, int64_t fan_out, Rng* rng) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandomUniform({fan_in, fan_out}, rng, -bound, bound);
}

std::string Tensor::ToString(int64_t max_elems) const {
  std::ostringstream os;
  os << "Tensor([";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << "]) [";
  const int64_t n = std::min<int64_t>(numel(), max_elems);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[static_cast<size_t>(i)];
  }
  if (numel() > n) os << ", ...";
  os << "]";
  return os.str();
}

// The three matmul entry points delegate to the blocked kernel layer
// in gemm.cc (register-tiled, ISA-dispatched, row-panel threaded for
// large shapes). Layout differences are absorbed here: strides for the
// transposed-A view, an explicit transpose into scratch for
// transposed-B so the inner loops always stream B rows contiguously.

Tensor MatMulValue(const Tensor& a, const Tensor& b) {
  BA_CHECK_EQ(a.rank(), 2);
  BA_CHECK_EQ(b.rank(), 2);
  BA_CHECK_EQ(a.dim(1), b.dim(0));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  internal::GemmDispatch(a.data(), /*as_i=*/k, /*as_p=*/1, b.data(), c.data(),
                         m, k, n);
  return c;
}

Tensor MatMulTransposeAValue(const Tensor& a, const Tensor& b) {
  BA_CHECK_EQ(a.rank(), 2);
  BA_CHECK_EQ(b.rank(), 2);
  BA_CHECK_EQ(a.dim(0), b.dim(0));
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  // A is (k,m): element (p, i) sits at p*m + i, i.e. unit stride across
  // the micro-kernel's rows — no transpose copy needed.
  internal::GemmDispatch(a.data(), /*as_i=*/1, /*as_p=*/m, b.data(), c.data(),
                         m, k, n);
  return c;
}

Tensor MatMulTransposeBValue(const Tensor& a, const Tensor& b) {
  BA_CHECK_EQ(a.rank(), 2);
  BA_CHECK_EQ(b.rank(), 2);
  BA_CHECK_EQ(a.dim(1), b.dim(1));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  if (m == 0 || k == 0 || n == 0) return c;
  // B arrives (n,k); the old kernel walked it as per-output dot
  // products, a serial reduction the vectorizer cannot touch under
  // strict FP. Transposing into (k,n) scratch up front costs O(n·k)
  // against the O(m·n·k) multiply and restores contiguous row access.
  // The scratch is thread_local and reused: at 512² it crosses glibc's
  // mmap threshold, and a fresh mmap + page-fault-zero + munmap per
  // call costs more than the transpose itself.
  thread_local std::vector<float> bt;
  bt.resize(static_cast<size_t>(k) * static_cast<size_t>(n));
  const float* bd = b.data();
  constexpr int64_t kBlk = 32;  // tiles keep both sides cache-resident
  for (int64_t j0 = 0; j0 < n; j0 += kBlk) {
    const int64_t j1 = std::min(n, j0 + kBlk);
    for (int64_t p0 = 0; p0 < k; p0 += kBlk) {
      const int64_t p1 = std::min(k, p0 + kBlk);
      for (int64_t j = j0; j < j1; ++j) {
        for (int64_t p = p0; p < p1; ++p) {
          bt[static_cast<size_t>(p * n + j)] = bd[j * k + p];
        }
      }
    }
  }
  internal::GemmDispatch(a.data(), /*as_i=*/k, /*as_p=*/1, bt.data(), c.data(),
                         m, k, n);
  return c;
}

}  // namespace ba::tensor
