#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

namespace ba::tensor {

Tensor Tensor::RandomUniform(std::vector<int64_t> shape, Rng* rng, float lo,
                             float hi) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::RandomNormal(std::vector<int64_t> shape, Rng* rng, float mean,
                            float stddev) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = static_cast<float>(rng->Gaussian(mean, stddev));
  }
  return t;
}

Tensor Tensor::XavierUniform(int64_t fan_in, int64_t fan_out, Rng* rng) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandomUniform({fan_in, fan_out}, rng, -bound, bound);
}

std::string Tensor::ToString(int64_t max_elems) const {
  std::ostringstream os;
  os << "Tensor([";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << "]) [";
  const int64_t n = std::min<int64_t>(numel(), max_elems);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << data_[static_cast<size_t>(i)];
  }
  if (numel() > n) os << ", ...";
  os << "]";
  return os.str();
}

Tensor MatMulValue(const Tensor& a, const Tensor& b) {
  BA_CHECK_EQ(a.rank(), 2);
  BA_CHECK_EQ(b.rank(), 2);
  BA_CHECK_EQ(a.dim(1), b.dim(0));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = ad[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = bd + p * n;
      float* crow = cd + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransposeAValue(const Tensor& a, const Tensor& b) {
  BA_CHECK_EQ(a.rank(), 2);
  BA_CHECK_EQ(b.rank(), 2);
  BA_CHECK_EQ(a.dim(0), b.dim(0));
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = ad + p * m;
    const float* brow = bd + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = cd + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransposeBValue(const Tensor& a, const Tensor& b) {
  BA_CHECK_EQ(a.rank(), 2);
  BA_CHECK_EQ(b.rank(), 2);
  BA_CHECK_EQ(a.dim(1), b.dim(1));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor c({m, n});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = ad + i * k;
    float* crow = cd + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = bd + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = acc;
    }
  }
  return c;
}

}  // namespace ba::tensor
