#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "graph/sparse_matrix.h"
#include "tensor/tensor.h"
#include "util/rng.h"

/// \file autograd.h
/// \brief Tape-based reverse-mode automatic differentiation.
///
/// Every differentiable operation builds a `Node` holding its value,
/// its parents and a backward closure; `Backward(root)` runs a reverse
/// topological sweep accumulating gradients into parameter nodes. This
/// is the training engine behind GFN, GCN, DiffPool, the LSTM
/// classifier and the MLP baselines.

namespace ba::tensor {

class Node;

/// Shared handle to an autograd tape node.
using Var = std::shared_ptr<Node>;

/// \brief One node of the autograd tape.
class Node {
 public:
  Tensor value;
  Tensor grad;                 ///< valid when grad_ready
  bool requires_grad = false;  ///< gradient flows into this node
  bool grad_ready = false;     ///< grad tensor allocated & initialized
  std::vector<Var> parents;
  /// Propagates this node's grad into its parents' grads.
  std::function<void(Node&)> backward;

  /// Adds `g` into this node's grad buffer (allocating on first use).
  /// No-op when the node does not require gradients.
  void AccumulateGrad(const Tensor& g);
};

/// Wraps a value that never receives gradients (inputs, labels).
Var Constant(Tensor value);

/// Wraps a trainable parameter (receives and keeps gradients).
Var Param(Tensor value);

/// \brief Runs reverse-mode differentiation from a scalar root.
/// Seeds d(root)/d(root) = 1 and sweeps the tape once. Gradients
/// accumulate across calls until ZeroGrad.
void Backward(const Var& root);

/// Clears gradients of the given nodes.
void ZeroGrad(const std::vector<Var>& params);

// ---------------------------------------------------------------------------
// Differentiable operations. All inputs are rank-2 unless noted.
// ---------------------------------------------------------------------------

/// C = A·B, (m,k)x(k,n).
Var MatMul(const Var& a, const Var& b);

/// Element-wise sum. Shapes must match, or `b` may be (1,n) and is then
/// broadcast over rows of (m,n) `a` (bias addition).
Var Add(const Var& a, const Var& b);

/// Element-wise difference of same-shaped tensors.
Var Sub(const Var& a, const Var& b);

/// Element-wise (Hadamard) product of same-shaped tensors.
Var Mul(const Var& a, const Var& b);

/// s·A for a compile-time constant scalar.
Var Scale(const Var& a, float s);

Var Relu(const Var& a);
Var Sigmoid(const Var& a);
Var Tanh(const Var& a);

/// Row-wise (axis=1) or column-wise (axis=0) softmax of a rank-2 input.
Var Softmax(const Var& a, int axis = 1);

/// \brief Mean softmax cross-entropy over rows of `logits` (m,c)
/// against integer labels (size m). Returns a rank-0 scalar.
Var SoftmaxCrossEntropy(const Var& logits, const std::vector<int>& labels);

/// Stacks inputs vertically; all must share the column count.
Var ConcatRows(const std::vector<Var>& parts);

/// Stacks inputs horizontally; all must share the row count.
Var ConcatCols(const std::vector<Var>& parts);

/// Column sums: (m,n) -> (1,n).
Var SumRows(const Var& a);

/// Column means: (m,n) -> (1,n).
Var MeanRows(const Var& a);

/// Column max: (m,n) -> (1,n). Gradient flows to (first) argmax rows.
Var MaxRows(const Var& a);

/// Rows [begin, end) of a rank-2 input.
Var SliceRows(const Var& a, int64_t begin, int64_t end);

/// Aᵀ.
Var Transpose(const Var& a);

/// \brief Y = S·X for a constant sparse matrix S (graph propagation).
/// Backward uses Sᵀ, computed once and cached alongside the op.
Var SpMM(std::shared_ptr<const graph::SparseMatrix> s, const Var& x);

/// \brief Inverted dropout. Identity when !training or p == 0.
Var Dropout(const Var& a, float p, Rng* rng, bool training);

/// Mean of all elements -> rank-0 scalar.
Var MeanAll(const Var& a);

/// \brief Frobenius-norm-squared times 0.5 — L2 regularization helper.
Var L2Penalty(const Var& a);

}  // namespace ba::tensor
