#include "tensor/autograd.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace ba::tensor {

void Node::AccumulateGrad(const Tensor& g) {
  if (!requires_grad) return;
  BA_CHECK(g.SameShape(value));
  if (!grad_ready) {
    grad = Tensor(value.shape());
    grad_ready = true;
  }
  grad.AddInPlace(g);
}

Var Constant(Tensor value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = false;
  return node;
}

Var Param(Tensor value) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = true;
  return node;
}

namespace {

/// Creates an op node whose requires_grad is inherited from parents.
Var MakeOp(Tensor value, std::vector<Var> parents,
           std::function<void(Node&)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->parents = std::move(parents);
  for (const auto& p : node->parents) {
    if (p->requires_grad) {
      node->requires_grad = true;
      break;
    }
  }
  if (node->requires_grad) node->backward = std::move(backward);
  return node;
}

}  // namespace

void Backward(const Var& root) {
  BA_CHECK_EQ(root->value.numel(), 1);
  // Iterative post-order DFS to get a topological order.
  std::vector<Node*> topo;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.push_back({root.get(), 0});
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child].get();
      ++next_child;
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.push_back({child, 0});
      }
    } else {
      topo.push_back(node);
      stack.pop_back();
    }
  }
  root->AccumulateGrad(Tensor::Ones(root->value.shape()));
  // topo is post-order: parents before dependents; traverse reversed.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    Node* node = *it;
    if (node->backward && node->grad_ready) node->backward(*node);
  }
}

void ZeroGrad(const std::vector<Var>& params) {
  for (const auto& p : params) {
    p->grad_ready = false;
    p->grad = Tensor();
  }
}

Var MatMul(const Var& a, const Var& b) {
  Tensor value = MatMulValue(a->value, b->value);
  return MakeOp(std::move(value), {a, b}, [](Node& n) {
    const Var& a = n.parents[0];
    const Var& b = n.parents[1];
    if (a->requires_grad) {
      a->AccumulateGrad(MatMulTransposeBValue(n.grad, b->value));
    }
    if (b->requires_grad) {
      b->AccumulateGrad(MatMulTransposeAValue(a->value, n.grad));
    }
  });
}

Var Add(const Var& a, const Var& b) {
  const Tensor& av = a->value;
  const Tensor& bv = b->value;
  const bool broadcast = !av.SameShape(bv);
  if (broadcast) {
    BA_CHECK_EQ(av.rank(), 2);
    BA_CHECK_EQ(bv.rank(), 2);
    BA_CHECK_EQ(bv.dim(0), 1);
    BA_CHECK_EQ(bv.dim(1), av.dim(1));
  }
  Tensor value = av;
  if (broadcast) {
    const int64_t m = av.dim(0), n = av.dim(1);
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) value.at(i, j) += bv.at(0, j);
    }
  } else {
    value.AddInPlace(bv);
  }
  return MakeOp(std::move(value), {a, b}, [broadcast](Node& n) {
    const Var& a = n.parents[0];
    const Var& b = n.parents[1];
    if (a->requires_grad) a->AccumulateGrad(n.grad);
    if (b->requires_grad) {
      if (!broadcast) {
        b->AccumulateGrad(n.grad);
      } else {
        const int64_t m = n.grad.dim(0), cols = n.grad.dim(1);
        Tensor gb({1, cols});
        for (int64_t i = 0; i < m; ++i) {
          for (int64_t j = 0; j < cols; ++j) gb.at(0, j) += n.grad.at(i, j);
        }
        b->AccumulateGrad(gb);
      }
    }
  });
}

Var Sub(const Var& a, const Var& b) {
  BA_CHECK(a->value.SameShape(b->value));
  Tensor value = a->value;
  for (int64_t i = 0; i < value.numel(); ++i) value.data()[i] -= b->value.data()[i];
  return MakeOp(std::move(value), {a, b}, [](Node& n) {
    const Var& a = n.parents[0];
    const Var& b = n.parents[1];
    if (a->requires_grad) a->AccumulateGrad(n.grad);
    if (b->requires_grad) {
      Tensor g = n.grad;
      g.ScaleInPlace(-1.0f);
      b->AccumulateGrad(g);
    }
  });
}

Var Mul(const Var& a, const Var& b) {
  BA_CHECK(a->value.SameShape(b->value));
  Tensor value = a->value;
  for (int64_t i = 0; i < value.numel(); ++i) value.data()[i] *= b->value.data()[i];
  return MakeOp(std::move(value), {a, b}, [](Node& n) {
    const Var& a = n.parents[0];
    const Var& b = n.parents[1];
    if (a->requires_grad) {
      Tensor g = n.grad;
      for (int64_t i = 0; i < g.numel(); ++i) g.data()[i] *= b->value.data()[i];
      a->AccumulateGrad(g);
    }
    if (b->requires_grad) {
      Tensor g = n.grad;
      for (int64_t i = 0; i < g.numel(); ++i) g.data()[i] *= a->value.data()[i];
      b->AccumulateGrad(g);
    }
  });
}

Var Scale(const Var& a, float s) {
  Tensor value = a->value;
  value.ScaleInPlace(s);
  return MakeOp(std::move(value), {a}, [s](Node& n) {
    Tensor g = n.grad;
    g.ScaleInPlace(s);
    n.parents[0]->AccumulateGrad(g);
  });
}

Var Relu(const Var& a) {
  Tensor value = a->value;
  for (int64_t i = 0; i < value.numel(); ++i) {
    value.data()[i] = std::max(0.0f, value.data()[i]);
  }
  return MakeOp(std::move(value), {a}, [](Node& n) {
    Tensor g = n.grad;
    for (int64_t i = 0; i < g.numel(); ++i) {
      if (n.parents[0]->value.data()[i] <= 0.0f) g.data()[i] = 0.0f;
    }
    n.parents[0]->AccumulateGrad(g);
  });
}

Var Sigmoid(const Var& a) {
  Tensor value = a->value;
  for (int64_t i = 0; i < value.numel(); ++i) {
    value.data()[i] = 1.0f / (1.0f + std::exp(-value.data()[i]));
  }
  return MakeOp(std::move(value), {a}, [](Node& n) {
    Tensor g = n.grad;
    for (int64_t i = 0; i < g.numel(); ++i) {
      const float y = n.value.data()[i];
      g.data()[i] *= y * (1.0f - y);
    }
    n.parents[0]->AccumulateGrad(g);
  });
}

Var Tanh(const Var& a) {
  Tensor value = a->value;
  for (int64_t i = 0; i < value.numel(); ++i) {
    value.data()[i] = std::tanh(value.data()[i]);
  }
  return MakeOp(std::move(value), {a}, [](Node& n) {
    Tensor g = n.grad;
    for (int64_t i = 0; i < g.numel(); ++i) {
      const float y = n.value.data()[i];
      g.data()[i] *= 1.0f - y * y;
    }
    n.parents[0]->AccumulateGrad(g);
  });
}

Var Softmax(const Var& a, int axis) {
  BA_CHECK_EQ(a->value.rank(), 2);
  BA_CHECK(axis == 0 || axis == 1);
  const int64_t m = a->value.dim(0), n = a->value.dim(1);
  Tensor value = a->value;
  auto softmax_span = [](float* base, int64_t count, int64_t stride) {
    float max_v = base[0];
    for (int64_t i = 1; i < count; ++i) max_v = std::max(max_v, base[i * stride]);
    float total = 0.0f;
    for (int64_t i = 0; i < count; ++i) {
      base[i * stride] = std::exp(base[i * stride] - max_v);
      total += base[i * stride];
    }
    for (int64_t i = 0; i < count; ++i) base[i * stride] /= total;
  };
  if (axis == 1) {
    for (int64_t i = 0; i < m; ++i) softmax_span(value.data() + i * n, n, 1);
  } else {
    for (int64_t j = 0; j < n; ++j) softmax_span(value.data() + j, m, n);
  }
  return MakeOp(std::move(value), {a}, [axis, m, n](Node& node) {
    // dL/dx_i = y_i * (g_i - sum_j g_j y_j) along the softmax axis.
    Tensor gx({m, n});
    auto backprop_span = [](const float* y, const float* g, float* out,
                            int64_t count, int64_t stride) {
      float dot = 0.0f;
      for (int64_t i = 0; i < count; ++i) dot += g[i * stride] * y[i * stride];
      for (int64_t i = 0; i < count; ++i) {
        out[i * stride] = y[i * stride] * (g[i * stride] - dot);
      }
    };
    if (axis == 1) {
      for (int64_t i = 0; i < m; ++i) {
        backprop_span(node.value.data() + i * n, node.grad.data() + i * n,
                      gx.data() + i * n, n, 1);
      }
    } else {
      for (int64_t j = 0; j < n; ++j) {
        backprop_span(node.value.data() + j, node.grad.data() + j,
                      gx.data() + j, m, n);
      }
    }
    node.parents[0]->AccumulateGrad(gx);
  });
}

Var SoftmaxCrossEntropy(const Var& logits, const std::vector<int>& labels) {
  BA_CHECK_EQ(logits->value.rank(), 2);
  const int64_t m = logits->value.dim(0), c = logits->value.dim(1);
  BA_CHECK_EQ(static_cast<int64_t>(labels.size()), m);
  // Forward: stable log-softmax; loss = -mean(log p[label]).
  auto probs = std::make_shared<Tensor>(Tensor({m, c}));
  double loss = 0.0;
  for (int64_t i = 0; i < m; ++i) {
    const float* row = logits->value.data() + i * c;
    float max_v = row[0];
    for (int64_t j = 1; j < c; ++j) max_v = std::max(max_v, row[j]);
    double total = 0.0;
    for (int64_t j = 0; j < c; ++j) total += std::exp(row[j] - max_v);
    const double log_total = std::log(total);
    const int y = labels[static_cast<size_t>(i)];
    BA_CHECK_GE(y, 0);
    BA_CHECK_LT(y, c);
    loss -= (row[y] - max_v) - log_total;
    for (int64_t j = 0; j < c; ++j) {
      probs->at(i, j) =
          static_cast<float>(std::exp(row[j] - max_v) / total);
    }
  }
  loss /= static_cast<double>(m);
  Tensor value = Tensor::Scalar(static_cast<float>(loss));
  auto labels_copy = std::make_shared<std::vector<int>>(labels);
  return MakeOp(std::move(value), {logits},
                [probs, labels_copy, m, c](Node& n) {
                  const float scale = n.grad.item() / static_cast<float>(m);
                  Tensor g({m, c});
                  for (int64_t i = 0; i < m; ++i) {
                    for (int64_t j = 0; j < c; ++j) {
                      float v = probs->at(i, j);
                      if (j == (*labels_copy)[static_cast<size_t>(i)]) {
                        v -= 1.0f;
                      }
                      g.at(i, j) = v * scale;
                    }
                  }
                  n.parents[0]->AccumulateGrad(g);
                });
}

Var ConcatRows(const std::vector<Var>& parts) {
  BA_CHECK(!parts.empty());
  const int64_t cols = parts[0]->value.dim(1);
  int64_t rows = 0;
  for (const auto& p : parts) {
    BA_CHECK_EQ(p->value.rank(), 2);
    BA_CHECK_EQ(p->value.dim(1), cols);
    rows += p->value.dim(0);
  }
  Tensor value({rows, cols});
  int64_t offset = 0;
  for (const auto& p : parts) {
    std::copy(p->value.data(), p->value.data() + p->value.numel(),
              value.data() + offset * cols);
    offset += p->value.dim(0);
  }
  return MakeOp(std::move(value), parts, [cols](Node& n) {
    int64_t offset = 0;
    for (auto& p : n.parents) {
      const int64_t r = p->value.dim(0);
      if (p->requires_grad) {
        Tensor g({r, cols});
        std::copy(n.grad.data() + offset * cols,
                  n.grad.data() + (offset + r) * cols, g.data());
        p->AccumulateGrad(g);
      }
      offset += r;
    }
  });
}

Var ConcatCols(const std::vector<Var>& parts) {
  BA_CHECK(!parts.empty());
  const int64_t rows = parts[0]->value.dim(0);
  int64_t cols = 0;
  for (const auto& p : parts) {
    BA_CHECK_EQ(p->value.rank(), 2);
    BA_CHECK_EQ(p->value.dim(0), rows);
    cols += p->value.dim(1);
  }
  Tensor value({rows, cols});
  int64_t offset = 0;
  for (const auto& p : parts) {
    const int64_t pc = p->value.dim(1);
    for (int64_t i = 0; i < rows; ++i) {
      std::copy(p->value.data() + i * pc, p->value.data() + (i + 1) * pc,
                value.data() + i * cols + offset);
    }
    offset += pc;
  }
  return MakeOp(std::move(value), parts, [rows, cols](Node& n) {
    int64_t offset = 0;
    for (auto& p : n.parents) {
      const int64_t pc = p->value.dim(1);
      if (p->requires_grad) {
        Tensor g({rows, pc});
        for (int64_t i = 0; i < rows; ++i) {
          std::copy(n.grad.data() + i * cols + offset,
                    n.grad.data() + i * cols + offset + pc,
                    g.data() + i * pc);
        }
        p->AccumulateGrad(g);
      }
      offset += pc;
    }
  });
}

Var SumRows(const Var& a) {
  BA_CHECK_EQ(a->value.rank(), 2);
  const int64_t m = a->value.dim(0), n = a->value.dim(1);
  Tensor value({1, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) value.at(0, j) += a->value.at(i, j);
  }
  return MakeOp(std::move(value), {a}, [m, n](Node& node) {
    Tensor g({m, n});
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) g.at(i, j) = node.grad.at(0, j);
    }
    node.parents[0]->AccumulateGrad(g);
  });
}

Var MeanRows(const Var& a) {
  const int64_t m = a->value.dim(0);
  return Scale(SumRows(a), 1.0f / static_cast<float>(m));
}

Var MaxRows(const Var& a) {
  BA_CHECK_EQ(a->value.rank(), 2);
  const int64_t m = a->value.dim(0), n = a->value.dim(1);
  BA_CHECK_GT(m, 0);
  Tensor value({1, n});
  auto argmax = std::make_shared<std::vector<int64_t>>(n, 0);
  for (int64_t j = 0; j < n; ++j) {
    float best = a->value.at(0, j);
    int64_t best_i = 0;
    for (int64_t i = 1; i < m; ++i) {
      if (a->value.at(i, j) > best) {
        best = a->value.at(i, j);
        best_i = i;
      }
    }
    value.at(0, j) = best;
    (*argmax)[static_cast<size_t>(j)] = best_i;
  }
  return MakeOp(std::move(value), {a}, [m, n, argmax](Node& node) {
    Tensor g({m, n});
    for (int64_t j = 0; j < n; ++j) {
      g.at((*argmax)[static_cast<size_t>(j)], j) = node.grad.at(0, j);
    }
    node.parents[0]->AccumulateGrad(g);
  });
}

Var SliceRows(const Var& a, int64_t begin, int64_t end) {
  BA_CHECK_EQ(a->value.rank(), 2);
  BA_CHECK_GE(begin, 0);
  BA_CHECK_LE(end, a->value.dim(0));
  BA_CHECK_LT(begin, end);
  const int64_t n = a->value.dim(1);
  const int64_t rows = end - begin;
  Tensor value({rows, n});
  std::copy(a->value.data() + begin * n, a->value.data() + end * n,
            value.data());
  return MakeOp(std::move(value), {a}, [begin, rows, n](Node& node) {
    Tensor g(node.parents[0]->value.shape());
    std::copy(node.grad.data(), node.grad.data() + rows * n,
              g.data() + begin * n);
    node.parents[0]->AccumulateGrad(g);
  });
}

Var Transpose(const Var& a) {
  BA_CHECK_EQ(a->value.rank(), 2);
  const int64_t m = a->value.dim(0), n = a->value.dim(1);
  Tensor value({n, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) value.at(j, i) = a->value.at(i, j);
  }
  return MakeOp(std::move(value), {a}, [m, n](Node& node) {
    Tensor g({m, n});
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) g.at(i, j) = node.grad.at(j, i);
    }
    node.parents[0]->AccumulateGrad(g);
  });
}

Var SpMM(std::shared_ptr<const graph::SparseMatrix> s, const Var& x) {
  BA_CHECK_EQ(x->value.rank(), 2);
  BA_CHECK_EQ(s->cols(), x->value.dim(0));
  const int64_t cols = x->value.dim(1);
  Tensor value({s->rows(), cols});
  s->MultiplyDense(x->value.data(), cols, value.data());
  return MakeOp(std::move(value), {x}, [s, cols](Node& node) {
    // gx = Sᵀ · gy; transpose computed lazily per backward call — these
    // matrices are per-slice and small, and Backward runs once per tape.
    const graph::SparseMatrix st = s->Transpose();
    Tensor g({st.rows(), cols});
    st.MultiplyDense(node.grad.data(), cols, g.data());
    node.parents[0]->AccumulateGrad(g);
  });
}

Var Dropout(const Var& a, float p, Rng* rng, bool training) {
  if (!training || p <= 0.0f) return a;
  BA_CHECK_LT(p, 1.0f);
  const float keep = 1.0f - p;
  auto mask = std::make_shared<Tensor>(a->value.shape());
  Tensor value = a->value;
  for (int64_t i = 0; i < value.numel(); ++i) {
    const float m = rng->Bernoulli(keep) ? 1.0f / keep : 0.0f;
    mask->data()[i] = m;
    value.data()[i] *= m;
  }
  return MakeOp(std::move(value), {a}, [mask](Node& n) {
    Tensor g = n.grad;
    for (int64_t i = 0; i < g.numel(); ++i) g.data()[i] *= mask->data()[i];
    n.parents[0]->AccumulateGrad(g);
  });
}

Var MeanAll(const Var& a) {
  const int64_t count = a->value.numel();
  Tensor value = Tensor::Scalar(
      static_cast<float>(a->value.Sum() / static_cast<double>(count)));
  return MakeOp(std::move(value), {a}, [count](Node& n) {
    Tensor g(n.parents[0]->value.shape());
    const float v = n.grad.item() / static_cast<float>(count);
    g.Fill(v);
    n.parents[0]->AccumulateGrad(g);
  });
}

Var L2Penalty(const Var& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a->value.numel(); ++i) {
    const double v = a->value.data()[i];
    acc += v * v;
  }
  Tensor value = Tensor::Scalar(static_cast<float>(0.5 * acc));
  return MakeOp(std::move(value), {a}, [](Node& n) {
    Tensor g = n.parents[0]->value;
    g.ScaleInPlace(n.grad.item());
    n.parents[0]->AccumulateGrad(g);
  });
}

}  // namespace ba::tensor
