#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

/// \file quant.h
/// \brief Int8 post-training quantization for inference-time linear
/// layers (DESIGN.md §7 "Quantized inference").
///
/// Scheme:
///  - weights: symmetric per-output-channel. Column j of a (in, out)
///    weight matrix gets scale_j = absmax(W[:,j]) / 127 and codes
///    q[p][j] = clamp(round(W[p][j] / scale_j), -127, 127) ∈ s8. The
///    codes are packed one output channel per row, k padded to
///    kInt8KAlign with zeros so the padded lanes cancel exactly.
///  - activations: per-tensor symmetric scale from a calibration pass
///    (ActivationObserver tracks the running absmax over representative
///    inputs). At inference x maps to u8 with zero-point 128:
///    u = clamp(round(x / s_a), -127, 127) + 128. The saturating clamp
///    is the only lossy step past calibration — out-of-calibration
///    activations pin to the grid edge instead of wrapping.
///  - accumulation: exact int32 (no wrap possible for the padded-k
///    bound Int8GemmDispatch enforces); the epilogue fuses the
///    zero-point compensation −128·colsum_j, the per-channel dequant
///    s_a·scale_j, and the fp32 bias in one pass.
///
/// Training stays fp32: quantization is a deploy-time transform of a
/// trained model (QuantizeWeights copies, never mutates), so gradients
/// and the optimizer never see the int8 grid.

namespace ba::tensor {

/// A trained linear layer's weights in packed int8 form, plus the
/// per-channel dequant metadata the kernel epilogue consumes.
struct QuantizedWeights {
  int64_t in_features = 0;
  int64_t out_features = 0;
  int64_t packed_k = 0;           ///< in_features rounded to kInt8KAlign
  std::vector<int8_t> packed;     ///< out_features × packed_k, channel-major
                                  ///< (the canonical/reference layout)
  std::vector<int8_t> kernel_packed;  ///< dispatched kernel's preferred
                                      ///< layout; empty when the kernel
                                      ///< reads `packed` directly
  std::vector<float> scales;      ///< per-channel weight scale
  std::vector<int32_t> colsums;   ///< per-channel Σ_p q[p][j] (zero-point
                                  ///< compensation term)
  std::vector<float> bias;        ///< fp32 bias, empty when the layer has none
};

/// Quantizes a trained (in, out) weight matrix (the nn::Linear layout)
/// per output channel. `bias` may be nullptr for a bias-free layer.
QuantizedWeights QuantizeWeights(const Tensor& weight, const Tensor* bias);

/// Running absmax over calibration activations; one observer per
/// quantized layer input.
class ActivationObserver {
 public:
  void Observe(const Tensor& x) { absmax_ = std::max(absmax_, x.AbsMax()); }
  float absmax() const { return absmax_; }
  /// Per-tensor activation scale; floored so an all-zero calibration
  /// set still yields a usable (if meaningless) grid.
  float scale() const { return std::max(absmax_, 1e-8f) / 127.0f; }

 private:
  float absmax_ = 0.0f;
};

/// Quantizes fp32 activations x (m, k) to u8 zero-point-128 codes in a
/// row-major m × Int8PackedK(k) buffer; padding lanes encode 0.0
/// (code 128). `out` is resized as needed.
void QuantizeActivations(const Tensor& x, float a_scale,
                         std::vector<uint8_t>* out);

/// y = x·W + bias through the int8 kernel family: quantizes x with the
/// calibrated `a_scale`, runs the packed int8 GEMM, returns fp32
/// (m, out). The weight-side packing happened once in QuantizeWeights.
Tensor Int8LinearValue(const Tensor& x, const QuantizedWeights& qw,
                       float a_scale);

}  // namespace ba::tensor
