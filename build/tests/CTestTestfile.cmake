# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/chain_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/autograd_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/sfe_test[1]_include.cmake")
include("/root/repo/build/tests/graph_builder_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/core_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/clustering_io_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
