file(REMOVE_RECURSE
  "CMakeFiles/clustering_io_test.dir/clustering_io_test.cc.o"
  "CMakeFiles/clustering_io_test.dir/clustering_io_test.cc.o.d"
  "clustering_io_test"
  "clustering_io_test.pdb"
  "clustering_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
