# Empty dependencies file for clustering_io_test.
# This may be replaced when dependencies are built.
