file(REMOVE_RECURSE
  "CMakeFiles/sfe_test.dir/sfe_test.cc.o"
  "CMakeFiles/sfe_test.dir/sfe_test.cc.o.d"
  "sfe_test"
  "sfe_test.pdb"
  "sfe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
