# Empty dependencies file for sfe_test.
# This may be replaced when dependencies are built.
