file(REMOVE_RECURSE
  "CMakeFiles/exchange_monitor.dir/exchange_monitor.cpp.o"
  "CMakeFiles/exchange_monitor.dir/exchange_monitor.cpp.o.d"
  "exchange_monitor"
  "exchange_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exchange_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
