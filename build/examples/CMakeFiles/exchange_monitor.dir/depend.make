# Empty dependencies file for exchange_monitor.
# This may be replaced when dependencies are built.
