file(REMOVE_RECURSE
  "CMakeFiles/dataset_release.dir/dataset_release.cpp.o"
  "CMakeFiles/dataset_release.dir/dataset_release.cpp.o.d"
  "dataset_release"
  "dataset_release.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_release.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
