# Empty compiler generated dependencies file for dataset_release.
# This may be replaced when dependencies are built.
