file(REMOVE_RECURSE
  "CMakeFiles/mixer_hunt.dir/mixer_hunt.cpp.o"
  "CMakeFiles/mixer_hunt.dir/mixer_hunt.cpp.o.d"
  "mixer_hunt"
  "mixer_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixer_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
