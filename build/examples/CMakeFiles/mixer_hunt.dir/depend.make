# Empty dependencies file for mixer_hunt.
# This may be replaced when dependencies are built.
