
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_dataset.cc" "bench/CMakeFiles/bench_table1_dataset.dir/bench_table1_dataset.cc.o" "gcc" "bench/CMakeFiles/bench_table1_dataset.dir/bench_table1_dataset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ba_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ba_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ba_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ba_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ba_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/ba_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/ba_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ba_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ba_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
