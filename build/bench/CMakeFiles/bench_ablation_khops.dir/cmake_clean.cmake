file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_khops.dir/bench_ablation_khops.cc.o"
  "CMakeFiles/bench_ablation_khops.dir/bench_ablation_khops.cc.o.d"
  "bench_ablation_khops"
  "bench_ablation_khops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_khops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
