# Empty dependencies file for bench_ablation_khops.
# This may be replaced when dependencies are built.
