# Empty compiler generated dependencies file for bench_fig1_active_addresses.
# This may be replaced when dependencies are built.
