file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_active_addresses.dir/bench_fig1_active_addresses.cc.o"
  "CMakeFiles/bench_fig1_active_addresses.dir/bench_fig1_active_addresses.cc.o.d"
  "bench_fig1_active_addresses"
  "bench_fig1_active_addresses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_active_addresses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
