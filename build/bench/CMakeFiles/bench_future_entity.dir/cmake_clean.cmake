file(REMOVE_RECURSE
  "CMakeFiles/bench_future_entity.dir/bench_future_entity.cc.o"
  "CMakeFiles/bench_future_entity.dir/bench_future_entity.cc.o.d"
  "bench_future_entity"
  "bench_future_entity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_entity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
