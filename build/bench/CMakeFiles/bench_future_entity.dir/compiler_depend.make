# Empty compiler generated dependencies file for bench_future_entity.
# This may be replaced when dependencies are built.
