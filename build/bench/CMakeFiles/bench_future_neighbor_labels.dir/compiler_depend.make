# Empty compiler generated dependencies file for bench_future_neighbor_labels.
# This may be replaced when dependencies are built.
