file(REMOVE_RECURSE
  "CMakeFiles/bench_future_neighbor_labels.dir/bench_future_neighbor_labels.cc.o"
  "CMakeFiles/bench_future_neighbor_labels.dir/bench_future_neighbor_labels.cc.o.d"
  "bench_future_neighbor_labels"
  "bench_future_neighbor_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_neighbor_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
