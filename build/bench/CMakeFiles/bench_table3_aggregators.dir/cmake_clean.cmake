file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_aggregators.dir/bench_table3_aggregators.cc.o"
  "CMakeFiles/bench_table3_aggregators.dir/bench_table3_aggregators.cc.o.d"
  "bench_table3_aggregators"
  "bench_table3_aggregators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_aggregators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
