# Empty dependencies file for bench_table5_stages.
# This may be replaced when dependencies are built.
