file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_stages.dir/bench_table5_stages.cc.o"
  "CMakeFiles/bench_table5_stages.dir/bench_table5_stages.cc.o.d"
  "bench_table5_stages"
  "bench_table5_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
