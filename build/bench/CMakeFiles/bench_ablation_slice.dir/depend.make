# Empty dependencies file for bench_ablation_slice.
# This may be replaced when dependencies are built.
