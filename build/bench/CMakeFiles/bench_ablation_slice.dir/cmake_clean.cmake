file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_slice.dir/bench_ablation_slice.cc.o"
  "CMakeFiles/bench_ablation_slice.dir/bench_ablation_slice.cc.o.d"
  "bench_ablation_slice"
  "bench_ablation_slice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_slice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
