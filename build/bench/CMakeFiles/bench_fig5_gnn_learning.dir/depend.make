# Empty dependencies file for bench_fig5_gnn_learning.
# This may be replaced when dependencies are built.
