# Empty dependencies file for bench_fig6_clf_learning.
# This may be replaced when dependencies are built.
