# Empty dependencies file for ba_ml.
# This may be replaced when dependencies are built.
