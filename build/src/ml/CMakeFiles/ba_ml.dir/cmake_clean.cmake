file(REMOVE_RECURSE
  "CMakeFiles/ba_ml.dir/bitscope.cc.o"
  "CMakeFiles/ba_ml.dir/bitscope.cc.o.d"
  "CMakeFiles/ba_ml.dir/boosting.cc.o"
  "CMakeFiles/ba_ml.dir/boosting.cc.o.d"
  "CMakeFiles/ba_ml.dir/dataset.cc.o"
  "CMakeFiles/ba_ml.dir/dataset.cc.o.d"
  "CMakeFiles/ba_ml.dir/decision_tree.cc.o"
  "CMakeFiles/ba_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/ba_ml.dir/kmeans.cc.o"
  "CMakeFiles/ba_ml.dir/kmeans.cc.o.d"
  "CMakeFiles/ba_ml.dir/knn.cc.o"
  "CMakeFiles/ba_ml.dir/knn.cc.o.d"
  "CMakeFiles/ba_ml.dir/lee_features.cc.o"
  "CMakeFiles/ba_ml.dir/lee_features.cc.o.d"
  "CMakeFiles/ba_ml.dir/linear_models.cc.o"
  "CMakeFiles/ba_ml.dir/linear_models.cc.o.d"
  "CMakeFiles/ba_ml.dir/mlp_classifier.cc.o"
  "CMakeFiles/ba_ml.dir/mlp_classifier.cc.o.d"
  "CMakeFiles/ba_ml.dir/naive_bayes.cc.o"
  "CMakeFiles/ba_ml.dir/naive_bayes.cc.o.d"
  "CMakeFiles/ba_ml.dir/random_forest.cc.o"
  "CMakeFiles/ba_ml.dir/random_forest.cc.o.d"
  "libba_ml.a"
  "libba_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ba_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
