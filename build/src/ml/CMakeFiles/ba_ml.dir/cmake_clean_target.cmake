file(REMOVE_RECURSE
  "libba_ml.a"
)
