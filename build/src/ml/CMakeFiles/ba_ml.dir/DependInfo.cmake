
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/bitscope.cc" "src/ml/CMakeFiles/ba_ml.dir/bitscope.cc.o" "gcc" "src/ml/CMakeFiles/ba_ml.dir/bitscope.cc.o.d"
  "/root/repo/src/ml/boosting.cc" "src/ml/CMakeFiles/ba_ml.dir/boosting.cc.o" "gcc" "src/ml/CMakeFiles/ba_ml.dir/boosting.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/ml/CMakeFiles/ba_ml.dir/dataset.cc.o" "gcc" "src/ml/CMakeFiles/ba_ml.dir/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/ba_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/ba_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/kmeans.cc" "src/ml/CMakeFiles/ba_ml.dir/kmeans.cc.o" "gcc" "src/ml/CMakeFiles/ba_ml.dir/kmeans.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/ba_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/ba_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/lee_features.cc" "src/ml/CMakeFiles/ba_ml.dir/lee_features.cc.o" "gcc" "src/ml/CMakeFiles/ba_ml.dir/lee_features.cc.o.d"
  "/root/repo/src/ml/linear_models.cc" "src/ml/CMakeFiles/ba_ml.dir/linear_models.cc.o" "gcc" "src/ml/CMakeFiles/ba_ml.dir/linear_models.cc.o.d"
  "/root/repo/src/ml/mlp_classifier.cc" "src/ml/CMakeFiles/ba_ml.dir/mlp_classifier.cc.o" "gcc" "src/ml/CMakeFiles/ba_ml.dir/mlp_classifier.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/ml/CMakeFiles/ba_ml.dir/naive_bayes.cc.o" "gcc" "src/ml/CMakeFiles/ba_ml.dir/naive_bayes.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/ml/CMakeFiles/ba_ml.dir/random_forest.cc.o" "gcc" "src/ml/CMakeFiles/ba_ml.dir/random_forest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ba_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ba_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ba_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ba_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/ba_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ba_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ba_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/ba_datagen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
