file(REMOVE_RECURSE
  "libba_core.a"
)
