file(REMOVE_RECURSE
  "CMakeFiles/ba_core.dir/aggregator.cc.o"
  "CMakeFiles/ba_core.dir/aggregator.cc.o.d"
  "CMakeFiles/ba_core.dir/classifier.cc.o"
  "CMakeFiles/ba_core.dir/classifier.cc.o.d"
  "CMakeFiles/ba_core.dir/flat_features.cc.o"
  "CMakeFiles/ba_core.dir/flat_features.cc.o.d"
  "CMakeFiles/ba_core.dir/gfn_features.cc.o"
  "CMakeFiles/ba_core.dir/gfn_features.cc.o.d"
  "CMakeFiles/ba_core.dir/graph_builder.cc.o"
  "CMakeFiles/ba_core.dir/graph_builder.cc.o.d"
  "CMakeFiles/ba_core.dir/graph_dataset.cc.o"
  "CMakeFiles/ba_core.dir/graph_dataset.cc.o.d"
  "CMakeFiles/ba_core.dir/graph_model.cc.o"
  "CMakeFiles/ba_core.dir/graph_model.cc.o.d"
  "CMakeFiles/ba_core.dir/sfe.cc.o"
  "CMakeFiles/ba_core.dir/sfe.cc.o.d"
  "libba_core.a"
  "libba_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ba_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
