# Empty compiler generated dependencies file for ba_core.
# This may be replaced when dependencies are built.
