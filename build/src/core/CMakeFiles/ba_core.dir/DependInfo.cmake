
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregator.cc" "src/core/CMakeFiles/ba_core.dir/aggregator.cc.o" "gcc" "src/core/CMakeFiles/ba_core.dir/aggregator.cc.o.d"
  "/root/repo/src/core/classifier.cc" "src/core/CMakeFiles/ba_core.dir/classifier.cc.o" "gcc" "src/core/CMakeFiles/ba_core.dir/classifier.cc.o.d"
  "/root/repo/src/core/flat_features.cc" "src/core/CMakeFiles/ba_core.dir/flat_features.cc.o" "gcc" "src/core/CMakeFiles/ba_core.dir/flat_features.cc.o.d"
  "/root/repo/src/core/gfn_features.cc" "src/core/CMakeFiles/ba_core.dir/gfn_features.cc.o" "gcc" "src/core/CMakeFiles/ba_core.dir/gfn_features.cc.o.d"
  "/root/repo/src/core/graph_builder.cc" "src/core/CMakeFiles/ba_core.dir/graph_builder.cc.o" "gcc" "src/core/CMakeFiles/ba_core.dir/graph_builder.cc.o.d"
  "/root/repo/src/core/graph_dataset.cc" "src/core/CMakeFiles/ba_core.dir/graph_dataset.cc.o" "gcc" "src/core/CMakeFiles/ba_core.dir/graph_dataset.cc.o.d"
  "/root/repo/src/core/graph_model.cc" "src/core/CMakeFiles/ba_core.dir/graph_model.cc.o" "gcc" "src/core/CMakeFiles/ba_core.dir/graph_model.cc.o.d"
  "/root/repo/src/core/sfe.cc" "src/core/CMakeFiles/ba_core.dir/sfe.cc.o" "gcc" "src/core/CMakeFiles/ba_core.dir/sfe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chain/CMakeFiles/ba_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ba_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/ba_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ba_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/ba_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ba_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ba_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
