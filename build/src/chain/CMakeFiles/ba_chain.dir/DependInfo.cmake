
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/clustering.cc" "src/chain/CMakeFiles/ba_chain.dir/clustering.cc.o" "gcc" "src/chain/CMakeFiles/ba_chain.dir/clustering.cc.o.d"
  "/root/repo/src/chain/io.cc" "src/chain/CMakeFiles/ba_chain.dir/io.cc.o" "gcc" "src/chain/CMakeFiles/ba_chain.dir/io.cc.o.d"
  "/root/repo/src/chain/ledger.cc" "src/chain/CMakeFiles/ba_chain.dir/ledger.cc.o" "gcc" "src/chain/CMakeFiles/ba_chain.dir/ledger.cc.o.d"
  "/root/repo/src/chain/types.cc" "src/chain/CMakeFiles/ba_chain.dir/types.cc.o" "gcc" "src/chain/CMakeFiles/ba_chain.dir/types.cc.o.d"
  "/root/repo/src/chain/wallet.cc" "src/chain/CMakeFiles/ba_chain.dir/wallet.cc.o" "gcc" "src/chain/CMakeFiles/ba_chain.dir/wallet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ba_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
