file(REMOVE_RECURSE
  "CMakeFiles/ba_chain.dir/clustering.cc.o"
  "CMakeFiles/ba_chain.dir/clustering.cc.o.d"
  "CMakeFiles/ba_chain.dir/io.cc.o"
  "CMakeFiles/ba_chain.dir/io.cc.o.d"
  "CMakeFiles/ba_chain.dir/ledger.cc.o"
  "CMakeFiles/ba_chain.dir/ledger.cc.o.d"
  "CMakeFiles/ba_chain.dir/types.cc.o"
  "CMakeFiles/ba_chain.dir/types.cc.o.d"
  "CMakeFiles/ba_chain.dir/wallet.cc.o"
  "CMakeFiles/ba_chain.dir/wallet.cc.o.d"
  "libba_chain.a"
  "libba_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ba_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
