file(REMOVE_RECURSE
  "libba_chain.a"
)
