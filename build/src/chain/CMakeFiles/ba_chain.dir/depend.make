# Empty dependencies file for ba_chain.
# This may be replaced when dependencies are built.
