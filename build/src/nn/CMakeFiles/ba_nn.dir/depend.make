# Empty dependencies file for ba_nn.
# This may be replaced when dependencies are built.
