file(REMOVE_RECURSE
  "CMakeFiles/ba_nn.dir/lstm.cc.o"
  "CMakeFiles/ba_nn.dir/lstm.cc.o.d"
  "libba_nn.a"
  "libba_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ba_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
