file(REMOVE_RECURSE
  "libba_nn.a"
)
