file(REMOVE_RECURSE
  "CMakeFiles/ba_tensor.dir/autograd.cc.o"
  "CMakeFiles/ba_tensor.dir/autograd.cc.o.d"
  "CMakeFiles/ba_tensor.dir/serialize.cc.o"
  "CMakeFiles/ba_tensor.dir/serialize.cc.o.d"
  "CMakeFiles/ba_tensor.dir/tensor.cc.o"
  "CMakeFiles/ba_tensor.dir/tensor.cc.o.d"
  "libba_tensor.a"
  "libba_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ba_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
