file(REMOVE_RECURSE
  "libba_tensor.a"
)
