# Empty compiler generated dependencies file for ba_tensor.
# This may be replaced when dependencies are built.
