file(REMOVE_RECURSE
  "CMakeFiles/ba_graph.dir/centrality.cc.o"
  "CMakeFiles/ba_graph.dir/centrality.cc.o.d"
  "CMakeFiles/ba_graph.dir/sparse_matrix.cc.o"
  "CMakeFiles/ba_graph.dir/sparse_matrix.cc.o.d"
  "libba_graph.a"
  "libba_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ba_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
