file(REMOVE_RECURSE
  "libba_graph.a"
)
