# Empty compiler generated dependencies file for ba_graph.
# This may be replaced when dependencies are built.
