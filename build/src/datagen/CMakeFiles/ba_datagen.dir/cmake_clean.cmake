file(REMOVE_RECURSE
  "CMakeFiles/ba_datagen.dir/dataset.cc.o"
  "CMakeFiles/ba_datagen.dir/dataset.cc.o.d"
  "CMakeFiles/ba_datagen.dir/simulator.cc.o"
  "CMakeFiles/ba_datagen.dir/simulator.cc.o.d"
  "libba_datagen.a"
  "libba_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ba_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
