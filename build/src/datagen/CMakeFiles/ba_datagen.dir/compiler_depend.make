# Empty compiler generated dependencies file for ba_datagen.
# This may be replaced when dependencies are built.
