file(REMOVE_RECURSE
  "libba_datagen.a"
)
