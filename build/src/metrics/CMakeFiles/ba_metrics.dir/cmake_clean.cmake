file(REMOVE_RECURSE
  "CMakeFiles/ba_metrics.dir/classification.cc.o"
  "CMakeFiles/ba_metrics.dir/classification.cc.o.d"
  "libba_metrics.a"
  "libba_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ba_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
