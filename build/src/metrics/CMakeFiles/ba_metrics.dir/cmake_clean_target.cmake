file(REMOVE_RECURSE
  "libba_metrics.a"
)
