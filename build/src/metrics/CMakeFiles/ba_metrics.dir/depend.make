# Empty dependencies file for ba_metrics.
# This may be replaced when dependencies are built.
