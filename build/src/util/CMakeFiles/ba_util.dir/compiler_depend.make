# Empty compiler generated dependencies file for ba_util.
# This may be replaced when dependencies are built.
