file(REMOVE_RECURSE
  "libba_util.a"
)
