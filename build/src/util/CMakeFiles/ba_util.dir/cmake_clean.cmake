file(REMOVE_RECURSE
  "CMakeFiles/ba_util.dir/status.cc.o"
  "CMakeFiles/ba_util.dir/status.cc.o.d"
  "CMakeFiles/ba_util.dir/thread_pool.cc.o"
  "CMakeFiles/ba_util.dir/thread_pool.cc.o.d"
  "libba_util.a"
  "libba_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ba_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
