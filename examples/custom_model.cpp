// Custom model: composing a new graph classifier from the library's
// neural primitives — what a downstream researcher would do to extend
// the paper.
//
// The custom encoder here is a GCN layer whose node embeddings are
// pooled by additive attention instead of SUM (a combination none of
// the paper's tables use), trained directly with the autograd engine,
// and compared against the stock GFN on the same split.
//
// Run:  ./build/examples/custom_model [--blocks 300] [--seed 11]

#include <iostream>

#include "core/graph_dataset.h"
#include "core/graph_model.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "metrics/classification.h"
#include "nn/attention.h"
#include "nn/gcn.h"
#include "tensor/optimizer.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

/// A GCN + attention-pool graph classifier built from public primitives.
class AttentionGcn : public ba::nn::Module {
 public:
  AttentionGcn(int64_t input_dim, int64_t hidden, int num_classes,
               ba::Rng* rng)
      : conv1_(input_dim, hidden, rng),
        conv2_(hidden, hidden, rng),
        pool_(hidden, hidden, rng),
        head_({hidden, hidden, num_classes}, rng) {}

  ba::tensor::Var Forward(const ba::core::GraphTensors& gt) const {
    auto x = ba::tensor::Constant(gt.base_features);
    auto h = conv2_.Forward(gt.norm_adj, conv1_.Forward(gt.norm_adj, x));
    return head_.Forward(pool_.Forward(h));  // attention readout
  }

  std::vector<ba::tensor::Var> Parameters() const override {
    return ba::nn::CollectParameters({&conv1_, &conv2_, &pool_, &head_});
  }

 private:
  ba::nn::GcnLayer conv1_;
  ba::nn::GcnLayer conv2_;
  ba::nn::AttentionPool pool_;
  ba::nn::Mlp head_;
};

}  // namespace

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  ba::datagen::ScenarioConfig config;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  config.num_blocks = static_cast<int>(flags.GetInt("blocks", 300));
  ba::datagen::Simulator simulator(config);
  BA_CHECK_OK(simulator.Run());

  auto labeled = simulator.CollectLabeledAddresses(3);
  ba::Rng rng(config.seed);
  labeled = ba::datagen::StratifiedSample(labeled, 400, &rng);
  const auto split = ba::datagen::StratifiedSplit(labeled, 0.8, &rng);
  ba::core::GraphDatasetBuilder builder;
  const auto train = builder.Build(simulator.ledger(), split.train);
  const auto test = builder.Build(simulator.ledger(), split.test);

  // --- Custom model, trained with the raw autograd API. ---------------
  ba::Rng model_rng(7);
  AttentionGcn model(ba::core::kNodeFeatureDim, 32,
                     ba::datagen::kNumBehaviors, &model_rng);
  ba::tensor::Adam optimizer(model.Parameters(), 1e-3f);
  std::cout << "custom AttentionGcn: " << model.NumParameters()
            << " parameters\n";

  const int epochs = static_cast<int>(flags.GetInt("epochs", 15));
  for (int epoch = 0; epoch < epochs; ++epoch) {
    double loss_sum = 0.0;
    int64_t count = 0;
    for (const auto& sample : train) {
      for (const auto& gt : sample.tensors) {
        optimizer.ZeroGrad();
        auto loss = ba::tensor::SoftmaxCrossEntropy(
            model.Forward(gt), std::vector<int>{sample.label});
        loss_sum += loss->value.item();
        ++count;
        ba::tensor::Backward(loss);
        optimizer.Step();
      }
    }
    if ((epoch + 1) % 5 == 0) {
      std::cout << "  epoch " << epoch + 1 << " mean loss "
                << ba::TablePrinter::Num(loss_sum / count, 3) << "\n";
    }
  }

  auto evaluate = [&](auto&& logits_fn) {
    ba::metrics::ConfusionMatrix cm(ba::datagen::kNumBehaviors);
    for (const auto& sample : test) {
      for (const auto& gt : sample.tensors) {
        const auto logits = logits_fn(gt);
        int best = 0;
        for (int c = 1; c < ba::datagen::kNumBehaviors; ++c) {
          if (logits->value.at(0, c) > logits->value.at(0, best)) best = c;
        }
        cm.Add(sample.label, best);
      }
    }
    return cm;
  };
  const auto custom_cm = evaluate(
      [&](const ba::core::GraphTensors& gt) { return model.Forward(gt); });

  // --- Stock GFN for reference. ---------------------------------------
  ba::core::GraphModelOptions gopts;
  gopts.epochs = epochs;
  ba::core::GraphModel gfn(gopts);
  gfn.Train(train);
  const auto gfn_cm = gfn.EvaluateGraphLevel(test);

  ba::TablePrinter table({"Model", "Accuracy", "Weighted F1"});
  table.AddRow({"AttentionGcn (custom)",
                ba::TablePrinter::Num(custom_cm.Accuracy()),
                ba::TablePrinter::Num(custom_cm.WeightedAverage().f1)});
  table.AddRow({"GFN (stock)", ba::TablePrinter::Num(gfn_cm.Accuracy()),
                ba::TablePrinter::Num(gfn_cm.WeightedAverage().f1)});
  table.Print(std::cout, "Custom vs stock graph classifier (graph level)");
  return 0;
}
