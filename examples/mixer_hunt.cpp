// Mixer hunt: the paper's motivating workflow (§III, "Workflow of Our
// System") — hunting underground banks and mixing services.
//
// A compliance team has a handful of confirmed labels. They train
// BAClassifier on them, then sweep EVERY sufficiently-active address on
// the chain and flag those predicted "Service". The example reports the
// flag list's precision/recall against ground truth and shows how
// flagged addresses expose further hidden laundering addresses via
// their transaction graphs.
//
// Run:  ./build/examples/mixer_hunt [--blocks 350] [--seed 3]

#include <algorithm>
#include <iostream>
#include <set>

#include "core/classifier.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  ba::datagen::ScenarioConfig config;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 3));
  config.num_blocks = static_cast<int>(flags.GetInt("blocks", 350));
  config.num_underground_banks = 2;
  ba::datagen::Simulator simulator(config);
  BA_CHECK_OK(simulator.Run());

  const auto labeled = simulator.CollectLabeledAddresses(/*min_txs=*/3);
  ba::Rng rng(config.seed);
  const auto split = ba::datagen::StratifiedSplit(labeled, 0.6, &rng);
  std::cout << "training on " << split.train.size()
            << " confirmed labels; sweeping the rest of the chain...\n";

  ba::core::BaClassifier::Options options;
  options.graph_model.epochs = 20;
  options.aggregator.epochs = 60;
  ba::core::BaClassifier classifier(options);
  BA_CHECK_OK(classifier.Train(simulator.ledger(), split.train));

  // Sweep: every held-out address, flag predicted Services.
  std::vector<int> predictions;
  BA_CHECK_OK(
      classifier.Predict(simulator.ledger(), split.test, &predictions));
  std::vector<ba::chain::AddressId> flagged;
  int64_t true_positive = 0, total_service = 0;
  for (size_t i = 0; i < split.test.size(); ++i) {
    const bool is_service =
        split.test[i].label == ba::datagen::BehaviorLabel::kService;
    total_service += is_service;
    if (predictions[i] ==
        static_cast<int>(ba::datagen::BehaviorLabel::kService)) {
      flagged.push_back(split.test[i].address);
      true_positive += is_service;
    }
  }
  std::cout << "flagged " << flagged.size() << " suspected service/"
            << "laundering addresses out of " << split.test.size()
            << " swept\n";
  const double precision =
      flagged.empty() ? 0.0
                      : static_cast<double>(true_positive) /
                            static_cast<double>(flagged.size());
  const double recall =
      total_service == 0 ? 0.0
                         : static_cast<double>(true_positive) /
                               static_cast<double>(total_service);
  std::cout << "flag precision " << ba::TablePrinter::Num(precision)
            << ", recall " << ba::TablePrinter::Num(recall) << "\n";

  // Lead expansion: counterparties of flagged addresses that are
  // themselves heavily entangled with the flags are follow-up leads —
  // "dig out more hidden addresses of underground banks" (§III).
  std::set<ba::chain::AddressId> flag_set(flagged.begin(), flagged.end());
  std::map<ba::chain::AddressId, int> lead_scores;
  for (ba::chain::AddressId a : flagged) {
    for (ba::chain::TxId txid : simulator.ledger().TransactionsOf(a)) {
      const auto& tx = simulator.ledger().tx(txid);
      auto touch = [&](ba::chain::AddressId other) {
        if (other != a && !flag_set.count(other)) ++lead_scores[other];
      };
      for (const auto& in : tx.inputs) touch(in.address);
      for (const auto& out : tx.outputs) touch(out.address);
    }
  }
  std::vector<std::pair<int, ba::chain::AddressId>> leads;
  for (const auto& [addr, score] : lead_scores) leads.push_back({score, addr});
  std::sort(leads.rbegin(), leads.rend());

  std::cout << "\ntop follow-up leads (shared transactions with flags):\n";
  for (size_t i = 0; i < 8 && i < leads.size(); ++i) {
    std::cout << "  " << ba::chain::FormatAddress(leads[i].second) << "  ("
              << leads[i].first << " shared txs)\n";
  }
  return 0;
}
