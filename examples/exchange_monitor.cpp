// Exchange monitor: a look inside the address-graph construction
// pipeline (§III-A) on one busy exchange hot wallet.
//
// Shows, per chronological slice: the raw graph size, what each
// compression stage removed, the centrality profile of the hot wallet's
// node, and the slice's GFN embedding trajectory — the same sequence
// the LSTM stage consumes.
//
// Run:  ./build/examples/exchange_monitor [--blocks 350] [--seed 5]

#include <iostream>

#include "core/gfn_features.h"
#include "core/graph_builder.h"
#include "core/graph_model.h"
#include "core/graph_dataset.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  ba::datagen::ScenarioConfig config;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 5));
  config.num_blocks = static_cast<int>(flags.GetInt("blocks", 350));
  ba::datagen::Simulator simulator(config);
  BA_CHECK_OK(simulator.Run());

  // Pick the busiest Exchange-labeled address (a hot wallet).
  const auto labeled = simulator.CollectLabeledAddresses(3);
  ba::chain::AddressId hot = ba::chain::kInvalidAddress;
  size_t best_txs = 0;
  for (const auto& a : labeled) {
    if (a.label != ba::datagen::BehaviorLabel::kExchange) continue;
    const size_t n = simulator.ledger().TransactionsOf(a.address).size();
    if (n > best_txs) {
      best_txs = n;
      hot = a.address;
    }
  }
  BA_CHECK(hot != ba::chain::kInvalidAddress);
  std::cout << "monitoring hot wallet " << ba::chain::FormatAddress(hot)
            << " (" << best_txs << " transactions, balance "
            << ba::TablePrinter::Num(
                   static_cast<double>(simulator.ledger().BalanceOf(hot)) /
                       ba::chain::kCoin,
                   3)
            << " BTC)\n";

  // Stage-by-stage construction with a small slice so several slices
  // show up.
  ba::core::GraphConstructorOptions copts;
  copts.slice_size = 25;
  ba::core::GraphConstructor constructor(copts);

  ba::core::GraphConstructorOptions raw_opts = copts;
  raw_opts.enable_single_compression = false;
  raw_opts.enable_multi_compression = false;
  raw_opts.enable_augmentation = false;
  ba::core::GraphConstructor raw_constructor(raw_opts);

  const auto raw = raw_constructor.BuildGraphs(simulator.ledger(), hot);
  const auto compressed = constructor.BuildGraphs(simulator.ledger(), hot);
  BA_CHECK_EQ(raw.size(), compressed.size());

  ba::TablePrinter table({"Slice", "Raw nodes", "Compressed", "Single-hyper",
                          "Multi-hyper", "Target degree", "Target PageRank"});
  for (size_t s = 0; s < compressed.size(); ++s) {
    const auto& g = compressed[s];
    const auto& target_features =
        g.nodes[static_cast<size_t>(g.target_node)].features;
    table.AddRow(
        {std::to_string(s), std::to_string(raw[s].num_nodes()),
         std::to_string(g.num_nodes()),
         std::to_string(g.CountKind(ba::core::NodeKind::kSingleHyper)),
         std::to_string(g.CountKind(ba::core::NodeKind::kMultiHyper)),
         ba::TablePrinter::Num(
             target_features[ba::core::kCentralityFeatureOffset], 2),
         ba::TablePrinter::Num(
             target_features[ba::core::kCentralityFeatureOffset + 3], 2)});
  }
  table.Print(std::cout,
              "Per-slice construction report (degree/PageRank are the "
              "log-compressed Stage-4 features)");

  // Embedding trajectory under a freshly trained GFN.
  ba::core::GraphDatasetOptions dopts;
  dopts.construction = copts;
  ba::core::GraphDatasetBuilder builder(dopts);
  ba::Rng rng(config.seed);
  auto sample_set = ba::datagen::StratifiedSample(labeled, 300, &rng);
  const auto train = builder.Build(simulator.ledger(), sample_set);
  ba::core::GraphModelOptions mopts;
  mopts.epochs = 15;
  ba::core::GraphModel gfn(mopts);
  gfn.Train(train);

  const auto own = builder.Build(
      simulator.ledger(), {{hot, ba::datagen::BehaviorLabel::kExchange}});
  BA_CHECK(!own.empty());
  std::cout << "\nGFN embedding trajectory (first 6 dims per slice):\n";
  for (const auto& gt : own[0].tensors) {
    const auto embed = gfn.Embed(gt);
    std::cout << "  [";
    for (int64_t j = 0; j < 6 && j < embed.dim(1); ++j) {
      if (j) std::cout << ", ";
      std::cout << ba::TablePrinter::Num(embed.at(0, j), 2);
    }
    std::cout << ", ...]  predicted="
              << ba::datagen::BehaviorName(static_cast<ba::datagen::BehaviorLabel>(
                     gfn.PredictGraph(gt)))
              << "\n";
  }
  return 0;
}
