// Quickstart: the full BAClassifier pipeline in ~60 lines.
//
// 1. Simulate a bitcoin economy on the UTXO ledger substrate.
// 2. Collect ground-truth labeled addresses and split them 80/20.
// 3. Train BAClassifier (graph construction -> GFN -> LSTM+MLP).
// 4. Evaluate, then classify individual addresses.
//
// Build & run:  ./build/examples/quickstart [--blocks 300] [--seed 1]

#include <iostream>

#include "core/classifier.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);

  // --- 1. A small synthetic economy. --------------------------------
  ba::datagen::ScenarioConfig config;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  config.num_blocks = static_cast<int>(flags.GetInt("blocks", 300));
  ba::datagen::Simulator simulator(config);
  BA_CHECK_OK(simulator.Run());
  std::cout << "simulated " << simulator.ledger().num_transactions()
            << " transactions over " << simulator.ledger().height()
            << " blocks\n";

  // --- 2. Labeled addresses, stratified 80/20 split. ------------------
  auto labeled = simulator.CollectLabeledAddresses(/*min_txs=*/3);
  ba::Rng rng(config.seed);
  const auto split = ba::datagen::StratifiedSplit(labeled, 0.8, &rng);
  std::cout << labeled.size() << " labeled addresses (" << split.train.size()
            << " train / " << split.test.size() << " test)\n";

  // --- 3. Train the classifier. --------------------------------------
  ba::core::BaClassifier::Options options;
  options.graph_model.epochs = 20;
  options.aggregator.epochs = 60;
  auto created = ba::core::BaClassifier::Create(options);
  BA_CHECK_OK(created.status());
  const auto classifier = std::move(created).value();
  BA_CHECK_OK(classifier->Train(simulator.ledger(), split.train));

  // --- 4. Evaluate and classify. --------------------------------------
  ba::metrics::ConfusionMatrix cm(options.graph_model.num_classes);
  BA_CHECK_OK(classifier->Evaluate(simulator.ledger(), split.test, &cm));
  const auto names = ba::datagen::BehaviorNames();
  ba::TablePrinter table({"Type", "Precision", "Recall", "F1-score"});
  for (int c = 0; c < ba::datagen::kNumBehaviors; ++c) {
    const auto r = cm.Report(c);
    table.AddRow({names[static_cast<size_t>(c)],
                  ba::TablePrinter::Num(r.precision),
                  ba::TablePrinter::Num(r.recall),
                  ba::TablePrinter::Num(r.f1)});
  }
  const auto w = cm.WeightedAverage();
  table.AddSeparator();
  table.AddRow({"Weighted Avg", ba::TablePrinter::Num(w.precision),
                ba::TablePrinter::Num(w.recall), ba::TablePrinter::Num(w.f1)});
  table.Print(std::cout, "BAClassifier test-set report");

  std::cout << "\nsample predictions:\n";
  for (size_t i = 0; i < 5 && i < split.test.size(); ++i) {
    const auto& addr = split.test[i];
    std::vector<int> pred;
    BA_CHECK_OK(classifier->Predict(simulator.ledger(), {addr}, &pred));
    std::cout << "  " << ba::chain::FormatAddress(addr.address)
              << "  predicted=" << names[static_cast<size_t>(pred[0])]
              << "  truth=" << ba::datagen::BehaviorName(addr.label) << "\n";
  }
  return 0;
}
