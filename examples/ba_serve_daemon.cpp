// ba_serve: the network serving daemon.
//
// Simulates an economy, trains a classifier on it, then stands the
// whole serving stack up behind two TCP listeners:
//
//   data port   binary frame protocol (serve/protocol.h) dispatching
//               into InferenceEngine::ClassifyAsync — drive it with
//               net::Client or bench_net_loadgen
//   admin port  line commands: metrics / health / trace ... / quit
//
// The daemon runs until SIGINT/SIGTERM, an admin `quit`, or
// --duration seconds elapse, then drains in-flight requests and exits
// 0. With --seal-every-ms > 0 a background writer keeps sealing new
// blocks while queries run, so health's epoch watermark moves and
// clients exercise the serve-while-seal path.
//
// Build & run:  ./build/examples/ba_serve [--port 0] [--admin-port 0]
//     [--port-file /tmp/ba_serve.port] [--blocks 60] [--duration 0]
//     [--seal-every-ms 0] [--cache ''] [--admission 1]
//     [--flight-recorder 1024] [--slow-ms 0] [--engines 1]
//
// --engines N > 1 stands up the sharded tier (serve::ShardedEngine):
// N inference engines behind a consistent-hash router, each owning the
// cache/queue/admission for its slice of the address space. The wire
// protocol and admin commands are identical; `metrics` reports the
// aggregated snapshot plus per-shard serve.engine.<k> providers, and
// --cache persists one file per shard plus a shard-count manifest.
//
// --flight-recorder N keeps the last N request timelines queryable
// over the admin port (`slowlog`, `timeline <trace_id>`); --slow-ms T
// additionally copies requests at or past T milliseconds into a slow
// ring and logs each as one structured serve.slowlog line.
//
// With --port 0 the kernel picks ephemeral ports; --port-file writes
// "<data_port> <admin_port>\n" (atomic rename) once both listeners are
// bound — scripts poll that file instead of racing the bind.

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "core/classifier.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "net/server.h"
#include "serve/inference_engine.h"
#include "serve/sharded_engine.h"
#include "util/cli.h"

namespace {

std::atomic<ba::net::Server*> g_server{nullptr};

void HandleSignal(int) {
  ba::net::Server* server = g_server.load(std::memory_order_relaxed);
  if (server != nullptr) server->RequestStop();
}

}  // namespace

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);

  // --- Economy + trained classifier (small by default: a smoke-test
  // daemon should be serving within seconds). -------------------------
  ba::datagen::ScenarioConfig config;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  config.num_blocks = static_cast<int>(flags.GetInt("blocks", 60));
  ba::datagen::Simulator simulator(config);
  BA_CHECK_OK(simulator.Run());

  auto labeled = simulator.CollectLabeledAddresses(/*min_txs=*/2);
  ba::Rng rng(config.seed);
  const auto split = ba::datagen::StratifiedSplit(labeled, 0.8, &rng);

  ba::core::BaClassifier::Options options;
  options.dataset.construction.slice_size =
      static_cast<int>(flags.GetInt("slice", 20));
  options.graph_model.epochs = static_cast<int>(flags.GetInt("epochs", 2));
  options.aggregator.epochs =
      static_cast<int>(flags.GetInt("agg-epochs", 6));
  auto created = ba::core::BaClassifier::Create(options);
  BA_CHECK_OK(created.status());
  const auto classifier = std::move(created).value();
  BA_CHECK_OK(classifier->Train(simulator.ledger(), split.train));
  std::cout << "trained on " << split.train.size() << " addresses over "
            << simulator.ledger().height() << " blocks ("
            << simulator.ledger().num_addresses() << " addresses total)\n";

  // --- Engine. --------------------------------------------------------
  ba::serve::InferenceEngineOptions engine_options;
  engine_options.num_threads =
      static_cast<int>(flags.GetInt("threads", 2));
  engine_options.cache_path = flags.GetString("cache", "");
  engine_options.enable_admission = flags.GetBool("admission", true);
  engine_options.admission.max_inflight =
      flags.GetInt("max-inflight", 1024);
  engine_options.admission.high_watermark =
      flags.GetInt("high-watermark", 256);
  engine_options.admission.low_watermark =
      flags.GetInt("low-watermark", 64);
  engine_options.flight_recorder_capacity =
      static_cast<size_t>(flags.GetInt("flight-recorder", 1024));
  engine_options.slow_request_threshold =
      static_cast<double>(flags.GetInt("slow-ms", 0)) / 1000.0;
  // One owning slot either way; `serving` is what the server and the
  // shutdown path talk to.
  const int num_engines = static_cast<int>(flags.GetInt("engines", 1));
  std::unique_ptr<ba::serve::InferenceEngine> single_engine;
  std::unique_ptr<ba::serve::ShardedEngine> sharded_engine;
  ba::serve::Engine* serving = nullptr;
  if (num_engines > 1) {
    ba::serve::ShardedEngineOptions sharded_options;
    sharded_options.num_engines = num_engines;
    sharded_options.engine = engine_options;
    auto created_sharded = ba::serve::ShardedEngine::Create(
        classifier.get(), &simulator.ledger(), sharded_options);
    BA_CHECK_OK(created_sharded.status());
    sharded_engine = std::move(created_sharded).value();
    serving = sharded_engine.get();
    std::cout << "sharded tier: " << num_engines
              << " engines behind the consistent-hash router\n";
  } else {
    auto created_single = ba::serve::InferenceEngine::Create(
        classifier.get(), &simulator.ledger(), engine_options);
    BA_CHECK_OK(created_single.status());
    single_engine = std::move(created_single).value();
    serving = single_engine.get();
  }

  // --- Server. --------------------------------------------------------
  ba::net::ServerOptions server_options;
  server_options.port =
      static_cast<uint16_t>(flags.GetInt("port", 0));
  server_options.admin_port =
      static_cast<uint16_t>(flags.GetInt("admin-port", 0));
  server_options.idle_timeout_sec =
      static_cast<int>(flags.GetInt("idle-timeout", 0));
  auto server = ba::net::Server::Create(
      serving, &simulator.ledger(), server_options);
  BA_CHECK_OK(server.status());
  BA_CHECK_OK(server.value()->Start());
  std::cout << "serving on 127.0.0.1:" << server.value()->port()
            << " (admin 127.0.0.1:" << server.value()->admin_port()
            << ", " << simulator.ledger().num_addresses()
            << " classifiable addresses)\n";

  // Port file: written via rename so a polling script never reads a
  // half-written line.
  const std::string port_file = flags.GetString("port-file", "");
  if (!port_file.empty()) {
    const std::string tmp = port_file + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      out << server.value()->port() << " "
          << server.value()->admin_port() << "\n";
    }
    if (std::rename(tmp.c_str(), port_file.c_str()) != 0) {
      std::cerr << "failed to write port file " << port_file << "\n";
      return 1;
    }
  }

  g_server.store(server.value().get(), std::memory_order_relaxed);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // Optional background writer: the ledger keeps growing while the
  // server answers, so clients see the epoch watermark advance.
  const int64_t seal_every_ms = flags.GetInt("seal-every-ms", 0);
  std::atomic<bool> sealer_stop{false};
  std::thread sealer;
  if (seal_every_ms > 0) {
    sealer = std::thread([&] {
      ba::chain::Ledger* ledger = simulator.mutable_ledger();
      ba::chain::Timestamp now =
          ledger->block(ledger->height() - 1).timestamp;
      ba::Rng pick(config.seed ^ 0xFEED);
      while (!sealer_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(seal_every_ms));
        now += ledger->options().block_interval_seconds;
        std::vector<ba::chain::AddressId> payouts;
        std::vector<double> weights;
        for (int i = 0; i < 3; ++i) {
          payouts.push_back(
              labeled[pick.UniformInt(
                          0, static_cast<int>(labeled.size()) - 1)]
                  .address);
          weights.push_back(1.0 / 3.0);
        }
        BA_CHECK_OK(ledger->ApplyCoinbase(now, payouts, weights).status());
        BA_CHECK_OK(ledger->SealBlock(now));
      }
    });
  }

  const int64_t duration_sec = flags.GetInt("duration", 0);
  std::atomic<bool> deadline_stop{false};
  std::thread deadline;
  if (duration_sec > 0) {
    deadline = std::thread([&] {
      const auto end = std::chrono::steady_clock::now() +
                       std::chrono::seconds(duration_sec);
      while (!deadline_stop.load(std::memory_order_relaxed) &&
             std::chrono::steady_clock::now() < end) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      if (!deadline_stop.load(std::memory_order_relaxed)) {
        server.value()->RequestStop();
      }
    });
  }

  server.value()->Wait();  // SIGINT, admin quit, or --duration
  g_server.store(nullptr, std::memory_order_relaxed);
  sealer_stop.store(true, std::memory_order_relaxed);
  deadline_stop.store(true, std::memory_order_relaxed);
  if (sealer.joinable()) sealer.join();
  if (deadline.joinable()) deadline.join();
  server.value()->Stop();  // drain in-flight classifies

  if (!engine_options.cache_path.empty()) {
    BA_CHECK_OK(serving->SaveCache());
  }
  const auto m = serving->Metrics();
  std::cout << "served " << m.requests << " requests (" << m.shed
            << " shed, " << m.deadline_exceeded << " deadline-exceeded, "
            << m.slow_requests << " slow), hit rate "
            << static_cast<int>(m.hit_rate * 100.0 + 0.5) << "%\n"
            << "clean shutdown\n";
  return 0;
}
