// Dataset release: the artifact workflow behind the paper's released
// dataset — export a simulated economy (full chain + behavior labels)
// to CSV, re-import it through full ledger validation, verify the
// round-trip, save/reload a trained classifier checkpoint, survive a
// mid-training "crash" via checkpoint/resume, and demonstrate that the
// CRC32 trailer catches a single flipped byte in a released artifact.
//
// Run:  ./build/examples/dataset_release [--blocks 250] [--dir /tmp]

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <iostream>

#include "chain/io.h"
#include "core/checkpoint.h"
#include "core/classifier.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "util/cli.h"
#include "util/fs.h"
#include "util/table.h"

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  const std::string dir = flags.GetString("dir", "/tmp");
  const std::string ledger_path = dir + "/ba_ledger.csv";
  const std::string labels_path = dir + "/ba_labels.csv";
  const std::string model_path = dir + "/ba_model.batn";

  // --- Simulate and export. ------------------------------------------
  ba::datagen::ScenarioConfig config;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 2));
  config.num_blocks = static_cast<int>(flags.GetInt("blocks", 250));
  ba::datagen::Simulator simulator(config);
  BA_CHECK_OK(simulator.Run());
  const auto labels = simulator.CollectLabeledAddresses(3);

  BA_CHECK_OK(ba::chain::ExportLedgerCsv(simulator.ledger(), ledger_path));
  BA_CHECK_OK(ba::datagen::ExportLabelsCsv(labels, labels_path));
  std::cout << "exported " << simulator.ledger().num_transactions()
            << " transactions -> " << ledger_path << "\n";
  std::cout << "exported " << labels.size() << " labels -> " << labels_path
            << "\n";

  // --- Re-import through full validation. -----------------------------
  auto imported = ba::chain::ImportLedgerCsv(ledger_path);
  BA_CHECK(imported.ok());
  const ba::chain::Ledger& ledger = imported.value();
  BA_CHECK_EQ(ledger.num_transactions(),
              simulator.ledger().num_transactions());
  BA_CHECK_EQ(ledger.total_minted(), simulator.ledger().total_minted());
  BA_CHECK_EQ(ledger.total_fees(), simulator.ledger().total_fees());
  BA_CHECK_OK(ledger.CheckConservation());
  auto reloaded_labels = ba::datagen::ImportLabelsCsv(labels_path);
  BA_CHECK(reloaded_labels.ok());
  BA_CHECK_EQ(reloaded_labels->size(), labels.size());
  std::cout << "round-trip verified: transactions, minted supply, fees and "
               "labels identical; conservation holds\n";

  // --- Train on the re-imported data and checkpoint the model. ---------
  ba::Rng rng(config.seed);
  const auto split =
      ba::datagen::StratifiedSplit(reloaded_labels.value(), 0.8, &rng);
  ba::core::BaClassifier::Options options;
  options.graph_model.epochs = 15;
  options.aggregator.epochs = 40;
  ba::core::BaClassifier classifier(options);
  BA_CHECK_OK(classifier.Train(ledger, split.train));
  ba::metrics::ConfusionMatrix cm(options.graph_model.num_classes);
  BA_CHECK_OK(classifier.Evaluate(ledger, split.test, &cm));
  std::cout << "trained on re-imported dataset: weighted F1 "
            << ba::TablePrinter::Num(cm.WeightedAverage().f1) << "\n";

  BA_CHECK_OK(classifier.Save(model_path));
  ba::core::BaClassifier restored(options);
  BA_CHECK_OK(restored.Load(model_path));
  ba::metrics::ConfusionMatrix cm2(options.graph_model.num_classes);
  BA_CHECK_OK(restored.Evaluate(ledger, split.test, &cm2));
  BA_CHECK_EQ(cm.TotalCount(), cm2.TotalCount());
  std::cout << "checkpoint " << model_path
            << " reloaded: weighted F1 "
            << ba::TablePrinter::Num(cm2.WeightedAverage().f1)
            << " (identical predictions: "
            << (cm.ToString() == cm2.ToString() ? "yes" : "no") << ")\n";

  // --- Crash-safe training: "die" at epoch 7, resume to 15. -----------
  const std::string ckpt_dir = dir + "/ba_ckpt";
  ::mkdir(ckpt_dir.c_str(), 0755);
  std::remove(ba::core::CheckpointPath(ckpt_dir).c_str());
  ba::core::BaClassifier::Options resume_options = options;
  resume_options.graph_model.checkpoint_dir = ckpt_dir;
  {
    ba::core::BaClassifier::Options half = resume_options;
    half.graph_model.epochs = 7;
    ba::core::BaClassifier interrupted(half);
    BA_CHECK_OK(interrupted.Train(ledger, split.train));
    // The "process" dies here; only the checkpoint file survives.
  }
  ba::core::BaClassifier resumed(resume_options);
  BA_CHECK_OK(resumed.Train(ledger, split.train));
  ba::metrics::ConfusionMatrix cm3(options.graph_model.num_classes);
  BA_CHECK_OK(resumed.Evaluate(ledger, split.test, &cm3));
  std::cout << "crash/resume: killed after epoch 7, resumed to 15: "
            << "weighted F1 " << ba::TablePrinter::Num(cm3.WeightedAverage().f1)
            << " (matches uninterrupted run: "
            << (cm.ToString() == cm3.ToString() ? "yes" : "no") << ")\n";
  std::remove(ba::core::CheckpointPath(ckpt_dir).c_str());

  // --- Corruption detection: flip one byte, the CRC catches it. -------
  {
    auto bytes = ba::util::ReadFileToString(ledger_path);
    BA_CHECK(bytes.ok());
    std::string tampered = std::move(bytes).value();
    tampered[tampered.size() / 2] =
        static_cast<char>(tampered[tampered.size() / 2] ^ 0x01);
    const std::string tampered_path = dir + "/ba_ledger_tampered.csv";
    {
      std::ofstream out(tampered_path, std::ios::binary);
      out.write(tampered.data(),
                static_cast<std::streamsize>(tampered.size()));
    }
    const auto bad = ba::chain::ImportLedgerCsv(tampered_path);
    BA_CHECK(!bad.ok());
    std::cout << "tamper detection: flipped 1 byte of the exported ledger\n"
              << "  -> " << bad.status().ToString() << "\n";
    std::remove(tampered_path.c_str());
  }
  return 0;
}
