// Serve monitor: a miniature production deployment of BAClassifier.
//
// 1. Simulate an economy and train a classifier on it.
// 2. Stand up an InferenceEngine (micro-batching + incremental cache).
// 3. Stream new blocks into the ledger; after each block, concurrent
//    monitoring clients re-classify every watched address. Repeat
//    queries hit the cache; addresses that gained transactions rebuild
//    only their tail slices.
// 4. Persist the cache after every block (crash-safe), print the
//    engine's metrics snapshot as the stream progresses, and stream the
//    process-wide MetricsRegistry JSON every --metrics-every blocks.
// 5. On exit, write a Perfetto-loadable trace of the whole run
//    (--trace-out, default /tmp/ba_serve_monitor_trace.json) — open it
//    at https://ui.perfetto.dev to see training epochs, serve batches
//    and thread-pool tasks on their timelines.
//
// Build & run:  ./build/examples/serve_monitor [--blocks 150]
//     [--stream 12] [--clients 3] [--cache /tmp/ba_serve_cache.basv]
//     [--trace-out /tmp/trace.json] [--admin <port>]
//     [--deadline-ms 0] [--overload 1]
//
// With --admin <port> the monitor exposes the net admin line protocol
// (metrics / health / trace / quit) while the stream runs; scrape it
// from another shell with the one-shot subcommand:
//
//     serve_monitor scrape --admin <port> [--cmd metrics]
//
// and pull the engine's flight recorder with the slowlog subcommand:
//
//     serve_monitor slowlog --admin <port> [--n 32]
//     serve_monitor slowlog --admin <port> --trace-id 0xdeadbeef
//
// which print one JSON line — the slow-request ring plus the most
// recent timelines, or (with --trace-id) the recorded timeline of one
// request.
//
// The old --metrics-every N flag (inline registry JSON every N blocks)
// still works but is deprecated in favor of the admin port.
//
// Resilience knobs: --deadline-ms gives every monitoring query a
// deadline (answers past it come back stale-but-labeled, since the
// monitor prefers a lagged answer over none); --overload N multiplies
// the client fleet N-fold and enables admission control, so the sweep
// demonstrates watermark shedding instead of unbounded queueing —
// watch the "resilience" line of the final metrics snapshot.

#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "core/classifier.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/inference_engine.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);

  // One-shot scrape subcommand: connect to a running monitor's (or
  // ba_serve's) admin port, send one command, print the reply line.
  if (argc > 1 && std::string(argv[1]) == "scrape") {
    const int port = static_cast<int>(flags.GetInt("admin", 0));
    if (port <= 0) {
      std::cerr << "usage: serve_monitor scrape --admin <port> "
                   "[--host 127.0.0.1] [--cmd metrics]\n";
      return 2;
    }
    const auto reply = ba::net::Client::AdminCommand(
        flags.GetString("host", "127.0.0.1"), static_cast<uint16_t>(port),
        flags.GetString("cmd", "metrics"));
    if (!reply.ok()) {
      std::cerr << "scrape failed: " << reply.status().message() << "\n";
      return 1;
    }
    std::cout << reply.value() << "\n";
    return 0;
  }

  // One-shot slowlog subcommand: pull the serving daemon's flight
  // recorder (or one request's timeline) over the admin port.
  if (argc > 1 && std::string(argv[1]) == "slowlog") {
    const int port = static_cast<int>(flags.GetInt("admin", 0));
    if (port <= 0) {
      std::cerr << "usage: serve_monitor slowlog --admin <port> "
                   "[--host 127.0.0.1] [--n 32] [--trace-id <id>]\n";
      return 2;
    }
    const std::string trace_id = flags.GetString("trace-id", "");
    const std::string command =
        trace_id.empty()
            ? "slowlog " + std::to_string(flags.GetInt("n", 32))
            : "timeline " + trace_id;
    const auto reply = ba::net::Client::AdminCommand(
        flags.GetString("host", "127.0.0.1"), static_cast<uint16_t>(port),
        command);
    if (!reply.ok()) {
      std::cerr << "slowlog failed: " << reply.status().message() << "\n";
      return 1;
    }
    std::cout << reply.value() << "\n";
    return 0;
  }

  // Tracing covers everything from training to the final query; the
  // trace is saved when the process exits.
  const std::string trace_out =
      flags.GetString("trace-out", "/tmp/ba_serve_monitor_trace.json");
  if (!trace_out.empty()) {
    ba::obs::Tracer::Instance().Enable();
    ba::obs::Tracer::Instance().SetCurrentThreadName("serve_monitor.main");
    ba::obs::Tracer::Instance().SaveAtExit(trace_out);
  }

  // --- 1. Economy + trained classifier. ------------------------------
  ba::datagen::ScenarioConfig config;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  config.num_blocks = static_cast<int>(flags.GetInt("blocks", 150));
  ba::datagen::Simulator simulator(config);
  BA_CHECK_OK(simulator.Run());

  auto labeled = simulator.CollectLabeledAddresses(/*min_txs=*/3);
  ba::Rng rng(config.seed);
  const auto split = ba::datagen::StratifiedSplit(labeled, 0.8, &rng);

  ba::core::BaClassifier::Options options;
  options.dataset.construction.slice_size =
      static_cast<int>(flags.GetInt("slice", 20));
  options.graph_model.epochs = static_cast<int>(flags.GetInt("epochs", 6));
  options.aggregator.epochs = 12;
  auto created = ba::core::BaClassifier::Create(options);
  BA_CHECK_OK(created.status());
  const auto classifier = std::move(created).value();
  BA_CHECK_OK(classifier->Train(simulator.ledger(), split.train));
  std::cout << "trained on " << split.train.size() << " addresses over "
            << simulator.ledger().height() << " blocks\n";

  // --- 2. The serving engine. ----------------------------------------
  const int overload = static_cast<int>(flags.GetInt("overload", 1));
  const int64_t deadline_ms = flags.GetInt("deadline-ms", 0);
  ba::serve::InferenceEngineOptions engine_options;
  engine_options.num_threads = static_cast<int>(flags.GetInt("threads", 2));
  engine_options.cache_path =
      flags.GetString("cache", "/tmp/ba_serve_cache.basv");
  if (overload > 1) {
    // Overload drill: bound the backlog so the multiplied fleet is
    // shed fast instead of queueing behind the sweep.
    engine_options.enable_admission = true;
    engine_options.admission.high_watermark = 8;
    engine_options.admission.low_watermark = 2;
  }
  auto engine = ba::serve::InferenceEngine::Create(
      classifier.get(), &simulator.ledger(), engine_options);
  BA_CHECK_OK(engine.status());
  std::cout << "engine up (cache " << engine_options.cache_path << ", "
            << engine.value()->CacheSize() << " entries warm)\n";

  // --admin <port>: expose the admin line protocol while the stream
  // runs (0 picks an ephemeral port, printed below).
  std::unique_ptr<ba::net::Server> admin_server;
  if (flags.Has("admin")) {
    ba::net::ServerOptions server_options;
    server_options.admin_port =
        static_cast<uint16_t>(flags.GetInt("admin", 0));
    auto made = ba::net::Server::Create(
        engine.value().get(), &simulator.ledger(), server_options);
    BA_CHECK_OK(made.status());
    admin_server = std::move(made).value();
    BA_CHECK_OK(admin_server->Start());
    std::cout << "admin on 127.0.0.1:" << admin_server->admin_port()
              << " — scrape with: serve_monitor scrape --admin "
              << admin_server->admin_port() << "\n";
  }

  const int metrics_every =
      static_cast<int>(flags.GetInt("metrics-every", 0));
  if (flags.Has("metrics-every")) {
    std::cerr << "warning: --metrics-every is deprecated; run with "
                 "--admin <port> and scrape it from another shell "
                 "(serve_monitor scrape --admin <port>)\n";
  }
  std::cout << "\n";

  // --- 3. Stream blocks, poll watched addresses each block. -----------
  const auto& watched = split.test;
  const int stream_blocks = static_cast<int>(flags.GetInt("stream", 12));
  const int clients =
      static_cast<int>(flags.GetInt("clients", 3)) * overload;
  ba::chain::Ledger* ledger = simulator.mutable_ledger();
  ba::chain::Timestamp now = ledger->block(ledger->height() - 1).timestamp;
  ba::Rng pick(config.seed ^ 0xFEED);

  for (int b = 0; b < stream_blocks; ++b) {
    // A new block arrives *while* the monitoring clients sweep: the
    // engine pins a ledger snapshot per micro-batch, so sealing needs
    // no quiescing — each query is answered at the epoch just before
    // or just after the seal, whichever its batch pinned.
    now += ledger->options().block_interval_seconds;
    std::vector<ba::chain::AddressId> payouts;
    std::vector<double> weights;
    for (int i = 0; i < 3; ++i) {
      payouts.push_back(
          watched[pick.UniformInt(0, static_cast<int>(watched.size()) - 1)]
              .address);
      weights.push_back(1.0 / 3.0);
    }
    std::thread sealer([&] {
      BA_CHECK_OK(ledger->ApplyCoinbase(now, payouts, weights).status());
      BA_CHECK_OK(ledger->SealBlock(now));
    });

    // Monitoring clients sweep the watch list concurrently. With a
    // deadline set, a query that can't finish in time falls back to the
    // last cached epoch (degraded, labeled with its lag); under an
    // overload drill, shed queries are an expected, explicit outcome.
    std::vector<std::thread> sweep;
    sweep.reserve(static_cast<size_t>(clients));
    std::atomic<uint64_t> swept{0};
    std::atomic<uint64_t> lagged{0};
    std::atomic<uint64_t> rejected{0};
    for (int c = 0; c < clients; ++c) {
      sweep.emplace_back([&, c] {
        for (size_t i = static_cast<size_t>(c); i < watched.size();
             i += static_cast<size_t>(clients)) {
          ba::serve::ClassifyOptions copts;
          if (deadline_ms > 0) {
            copts = ba::serve::ClassifyOptions::WithTimeout(
                static_cast<double>(deadline_ms) * 1e-3);
            copts.allow_degraded = true;
          }
          const auto result =
              engine.value()->Classify(watched[i].address, copts);
          if (result.ok()) {
            swept.fetch_add(1);
            if (result.value().degraded) lagged.fetch_add(1);
          } else if (result.status().code() ==
                         ba::StatusCode::kResourceExhausted ||
                     result.status().code() ==
                         ba::StatusCode::kDeadlineExceeded) {
            rejected.fetch_add(1);
          } else {
            BA_CHECK_OK(result.status());
          }
        }
      });
    }
    sealer.join();
    for (auto& t : sweep) t.join();
    if (lagged > 0 || rejected > 0) {
      std::cout << "  sweep: " << swept << " answered (" << lagged
                << " degraded), " << rejected << " rejected\n";
    }
    BA_CHECK_OK(engine.value()->SaveCache());

    const auto m = engine.value()->Metrics();
    std::cout << "block " << ledger->height() << ": " << m.requests
              << " queries served, hit rate "
              << static_cast<int>(m.hit_rate * 100.0 + 0.5) << "%, p99 "
              << ba::serve::FormatSeconds(m.request_latency.p99_seconds)
              << "\n";

    // Deprecated inline registry scrape (--metrics-every): the admin
    // port serves the same JSON on demand without polluting stdout.
    if (metrics_every > 0 && (b + 1) % metrics_every == 0) {
      std::cout << "registry: "
                << ba::obs::MetricsRegistry::Instance().JsonExposition()
                << "\n";
    }
  }

  // --- 4. Final metrics snapshot. -------------------------------------
  if (admin_server != nullptr) admin_server->Stop();
  std::cout << "\n" << engine.value()->Metrics().ToString();
  if (!trace_out.empty()) {
    std::cout << "\ntrace will be saved to " << trace_out
              << " (open in https://ui.perfetto.dev)\n";
  }
  return 0;
}
