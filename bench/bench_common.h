#pragma once

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/graph_dataset.h"
#include "datagen/dataset.h"
#include "datagen/simulator.h"
#include "metrics/classification.h"
#include "obs/trace.h"
#include "tensor/gemm.h"
#include "util/cli.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

/// \file bench_common.h
/// \brief Shared scaffolding for the per-table / per-figure benchmark
/// harnesses: economy construction, dataset materialization, and the
/// per-class table rendering the paper's tables use.
///
/// Every bench additionally accepts `--trace-out=<path>` (tracing is
/// enabled for the whole run and a Perfetto-loadable trace is written
/// at process exit, see obs/trace.h) and `--threads=<n>` (sizes the
/// process-wide `util::SharedPool()` before its first use, so one
/// BENCH trajectory is comparable across machines).

namespace ba::bench {

/// \brief Enables tracing when `--trace-out` is set. Called from
/// ScenarioFromFlags so every bench picks it up without code changes;
/// idempotent across repeated calls in multi-experiment benches.
inline void MaybeEnableTracing(const CliFlags& flags) {
  const std::string path = flags.GetString("trace-out", "");
  if (path.empty() || obs::Tracer::Instance().enabled()) return;
  obs::Tracer::Instance().Enable();
  obs::Tracer::Instance().SetCurrentThreadName("bench.main");
  obs::Tracer::Instance().SaveAtExit(path);
  std::cout << "tracing enabled, will save to " << path << "\n";
}

/// \brief Sizes the shared pool from `--threads` (no-op without the
/// flag, or once the pool has materialized). Mirrors MaybeEnableTracing
/// — called from ScenarioFromFlags so every bench honors the flag.
inline void MaybeSetSharedPoolThreads(const CliFlags& flags) {
  const auto n = flags.GetInt("threads", 0);
  if (n >= 1) util::SetSharedPoolThreads(static_cast<size_t>(n));
}

// Fallbacks so bench_common.h also compiles in targets that don't go
// through ba_add_bench (which bakes the real values in).
#ifndef BA_BENCH_GIT_SHA
#define BA_BENCH_GIT_SHA "unknown"
#endif
#ifndef BA_BENCH_CXX_FLAGS
#define BA_BENCH_CXX_FLAGS "unknown"
#endif
#ifndef BA_BENCH_COMPILER
#define BA_BENCH_COMPILER "unknown"
#endif

/// \brief The CPU "model name" from /proc/cpuinfo, or "unknown" where
/// that pseudo-file doesn't exist. GFLOPS entries are meaningless
/// without knowing the silicon that produced them.
inline std::string CpuModelName() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") != 0) continue;
    auto start = line.find_first_not_of(" \t", colon + 1);
    if (start == std::string::npos) start = colon + 1;
    return line.substr(start);
  }
  return "unknown";
}

/// \brief JSON object recording the provenance every BENCH_*.json
/// needs to be comparable across machines and commits: which benchmark
/// wrote it, git SHA, compiler + flags, the `--threads` setting, the
/// shared pool's effective size, the machine's hardware concurrency,
/// the CPU model, and which fp32 target_clones / int8 kernel variants
/// actually dispatch on this host. Every bench JSON writer goes
/// through this one helper — add a provenance field here and all of
/// them pick it up.
inline std::string BenchMetaJson(const CliFlags& flags,
                                 const char* bench_name = "") {
  std::ostringstream os;
  os << "{";
  if (bench_name[0] != '\0') os << "\"bench\":\"" << bench_name << "\",";
  os << "\"git_sha\":\"" << BA_BENCH_GIT_SHA << "\",\"compiler\":\""
     << BA_BENCH_COMPILER << "\",\"cxx_flags\":\"" << BA_BENCH_CXX_FLAGS
     << "\",\"threads_flag\":" << flags.GetInt("threads", 0)
     << ",\"shared_pool_threads\":" << util::SharedPoolThreads()
     << ",\"hardware_concurrency\":" << std::thread::hardware_concurrency()
     << ",\"cpu_model\":\"" << CpuModelName()
     << "\",\"gemm_variant\":\"" << tensor::internal::GemmVariantName()
     << "\",\"int8_gemm_variant\":\"" << tensor::internal::Int8GemmVariantName()
     << "\"}";
  return os.str();
}

/// \brief One materialized experiment: simulated economy + stratified
/// 80/20 split with tensors prepared.
struct Experiment {
  std::unique_ptr<datagen::Simulator> simulator;
  std::vector<core::AddressSample> train;
  std::vector<core::AddressSample> test;
  core::StageTimings construction_timings;
  int64_t addresses_used = 0;
};

/// \brief Default benchmark economy, rescalable from the command line:
///   --blocks N        simulation length           (default 400)
///   --addresses N     labeled addresses sampled   (default 700)
///   --seed S          master seed                 (default 42)
///   --slice N         transactions per graph      (default 100)
///   --khops K         GFN propagation depth       (default 2)
///   --noise X         behavioral noise            (default 0.12)
///   --threads N       graph-construction threads  (default 1)
inline datagen::ScenarioConfig ScenarioFromFlags(const CliFlags& flags,
                                                 uint64_t seed_offset = 0) {
  MaybeEnableTracing(flags);
  MaybeSetSharedPoolThreads(flags);
  datagen::ScenarioConfig config;
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42)) + seed_offset;
  config.num_blocks = static_cast<int>(flags.GetInt("blocks", 400));
  config.behavior_noise = flags.GetDouble("noise", 0.12);
  // Population tuned so label shares approximate the paper's Table I
  // ordering: Exchange > Service > Gambling > Mining.
  config.num_mining_pools = 2;
  config.miners_per_pool = 30;
  config.num_exchanges = 3;
  config.num_gambling_houses = 2;
  config.gamblers_per_house = 70;
  config.num_services = 5;
  config.num_retail_users = 180;
  config.mixes_per_block = 0.35;
  config.mix_fresh_entry_prob = 0.4;
  return config;
}

inline core::GraphDatasetOptions DatasetOptionsFromFlags(
    const CliFlags& flags) {
  core::GraphDatasetOptions opts;
  opts.construction.slice_size = static_cast<int>(flags.GetInt("slice", 100));
  opts.construction.similarity_threshold = flags.GetDouble("psi", 0.5);
  opts.k_hops = static_cast<int>(flags.GetInt("khops", 2));
  opts.num_threads = static_cast<int>(flags.GetInt("threads", 1));
  return opts;
}

/// Simulates the economy, samples labeled addresses (stratified), splits
/// 80/20 (the paper's protocol) and materializes graph tensors.
inline Experiment BuildExperiment(const CliFlags& flags, bool verbose = true,
                                  uint64_t seed_offset = 0) {
  Experiment exp;
  const auto config = ScenarioFromFlags(flags, seed_offset);
  Stopwatch watch;
  watch.Start();
  exp.simulator = std::make_unique<datagen::Simulator>(config);
  BA_CHECK_OK(exp.simulator->Run());
  watch.Stop();
  if (verbose) {
    std::cout << "[setup] simulated " << config.num_blocks << " blocks, "
              << exp.simulator->ledger().num_transactions()
              << " transactions, " << exp.simulator->ledger().num_addresses()
              << " addresses in " << TablePrinter::Num(watch.ElapsedSeconds(), 2)
              << "s (seed " << config.seed << ")\n";
  }

  auto labeled = exp.simulator->CollectLabeledAddresses(
      static_cast<int>(flags.GetInt("min_txs", 2)));
  Rng rng(config.seed ^ 0xBEEF);
  labeled = datagen::StratifiedSample(
      labeled, flags.GetInt("addresses", 700), &rng);
  exp.addresses_used = static_cast<int64_t>(labeled.size());
  const auto split = datagen::StratifiedSplit(labeled, 0.8, &rng);

  watch.Reset();
  watch.Start();
  core::GraphDatasetBuilder builder(DatasetOptionsFromFlags(flags));
  exp.train = builder.Build(exp.simulator->ledger(), split.train);
  exp.test = builder.Build(exp.simulator->ledger(), split.test);
  exp.construction_timings = builder.timings();
  watch.Stop();
  if (verbose) {
    std::cout << "[setup] materialized " << exp.train.size() << " train / "
              << exp.test.size() << " test address samples in "
              << TablePrinter::Num(watch.ElapsedSeconds(), 2) << "s\n";
  }
  return exp;
}

/// Appends the per-class + weighted-average rows the paper's Tables
/// III/IV use for one model.
inline void AddPerClassRows(TablePrinter* table, const std::string& model,
                            const metrics::ConfusionMatrix& cm) {
  const auto names = datagen::BehaviorNames();
  const auto reports = cm.AllReports();
  for (int c = 0; c < cm.num_classes(); ++c) {
    table->AddRow({c == 0 ? model : "", names[static_cast<size_t>(c)],
                   TablePrinter::Num(reports[static_cast<size_t>(c)].precision),
                   TablePrinter::Num(reports[static_cast<size_t>(c)].recall),
                   TablePrinter::Num(reports[static_cast<size_t>(c)].f1)});
  }
  const auto w = cm.WeightedAverage();
  table->AddRow({"", "Weighted Avg", TablePrinter::Num(w.precision),
                 TablePrinter::Num(w.recall), TablePrinter::Num(w.f1)});
  table->AddSeparator();
}

}  // namespace ba::bench
