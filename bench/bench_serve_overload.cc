// Overload behavior of the serving engine: closed-loop client fleets at
// 1x/2x/4x the base concurrency hammer an admission-controlled engine
// while a sealer thread keeps growing the watched addresses (so every
// poll does real graph work instead of hitting a warm cache). Reports
// per-load admitted/shed latency percentiles, writes a machine-readable
// BENCH_overload.json, and gates on the resilience contract:
//
//   * zero requests lost — every call resolves to success or an
//     explicit ResourceExhausted shed;
//   * shed requests are rejected fast (p99 < 1 ms) at 4x load;
//   * p99 latency of ADMITTED requests at 4x load stays within 2x of
//     the 1x-load p99 — overload is shed, not queued.
//
//   ./build/bench/bench_serve_overload [--blocks 80] [--addresses 48]
//       [--clients 4] [--phase-seconds 2.0] [--threads 2]
//       [--out BENCH_overload.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/classifier.h"
#include "serve/inference_engine.h"

namespace {

using SteadyClock = std::chrono::steady_clock;

double PercentileOf(std::vector<double> sorted_in_place, double p) {
  if (sorted_in_place.empty()) return 0.0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const size_t idx = static_cast<size_t>(
      p / 100.0 * static_cast<double>(sorted_in_place.size() - 1) + 0.5);
  return sorted_in_place[std::min(idx, sorted_in_place.size() - 1)];
}

struct LoadResult {
  int multiple = 0;
  int clients = 0;
  uint64_t requests = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t lost = 0;  // any outcome outside the contract
  double p50_admitted_s = 0.0;
  double p99_admitted_s = 0.0;
  double p99_shed_s = 0.0;
  double qps = 0.0;

  std::string ToJson() const {
    std::ostringstream os;
    os << "{\"multiple\":" << multiple << ",\"clients\":" << clients
       << ",\"requests\":" << requests << ",\"admitted\":" << admitted
       << ",\"shed\":" << shed << ",\"lost\":" << lost
       << ",\"p50_admitted_s\":" << p50_admitted_s
       << ",\"p99_admitted_s\":" << p99_admitted_s
       << ",\"p99_shed_s\":" << p99_shed_s << ",\"qps\":" << qps << "}";
    return os.str();
  }
};

/// One closed-loop phase: `clients` threads poll the watched addresses
/// for `seconds`, each call timed individually and bucketed by outcome.
LoadResult RunPhase(ba::serve::InferenceEngine* engine,
                    const std::vector<ba::datagen::LabeledAddress>& watched,
                    int multiple, int clients, double seconds) {
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> admitted_lat(
      static_cast<size_t>(clients));
  std::vector<std::vector<double>> shed_lat(static_cast<size_t>(clients));
  std::vector<uint64_t> lost(static_cast<size_t>(clients), 0);

  ba::Stopwatch watch;
  watch.Start();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      size_t cursor = static_cast<size_t>(c);
      while (!stop.load(std::memory_order_acquire)) {
        const ba::chain::AddressId address =
            watched[cursor % watched.size()].address;
        cursor += static_cast<size_t>(clients);
        const SteadyClock::time_point t0 = SteadyClock::now();
        const auto result = engine->Classify(address);
        const double dt =
            std::chrono::duration<double>(SteadyClock::now() - t0)
                .count();
        if (result.ok()) {
          admitted_lat[static_cast<size_t>(c)].push_back(dt);
        } else if (result.status().code() ==
                   ba::StatusCode::kResourceExhausted) {
          shed_lat[static_cast<size_t>(c)].push_back(dt);
          // A real client backs off after a shed; a zero-delay retry
          // loop would just burn the cores the admitted work needs.
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        } else {
          ++lost[static_cast<size_t>(c)];
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  watch.Stop();

  LoadResult r;
  r.multiple = multiple;
  r.clients = clients;
  std::vector<double> all_admitted;
  std::vector<double> all_shed;
  for (int c = 0; c < clients; ++c) {
    const auto& a = admitted_lat[static_cast<size_t>(c)];
    const auto& s = shed_lat[static_cast<size_t>(c)];
    all_admitted.insert(all_admitted.end(), a.begin(), a.end());
    all_shed.insert(all_shed.end(), s.begin(), s.end());
    r.lost += lost[static_cast<size_t>(c)];
  }
  r.admitted = all_admitted.size();
  r.shed = all_shed.size();
  r.requests = r.admitted + r.shed + r.lost;
  r.p50_admitted_s = PercentileOf(all_admitted, 50.0);
  r.p99_admitted_s = PercentileOf(all_admitted, 99.0);
  r.p99_shed_s = PercentileOf(all_shed, 99.0);
  r.qps = static_cast<double>(r.requests) / watch.ElapsedSeconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  const int base_clients = static_cast<int>(flags.GetInt("clients", 4));
  const double phase_seconds = flags.GetDouble("phase-seconds", 2.0);

  ba::datagen::ScenarioConfig config = ba::bench::ScenarioFromFlags(flags);
  config.num_blocks = static_cast<int>(flags.GetInt("blocks", 80));
  ba::datagen::Simulator simulator(config);
  BA_CHECK_OK(simulator.Run());
  auto labeled = simulator.CollectLabeledAddresses(/*min_txs=*/3);
  ba::Rng rng(config.seed ^ 0xFEED);
  labeled = ba::datagen::StratifiedSample(
      labeled, flags.GetInt("addresses", 48), &rng);
  const auto split = ba::datagen::StratifiedSplit(labeled, 0.8, &rng);

  ba::core::BaClassifier::Options options;
  options.dataset = ba::bench::DatasetOptionsFromFlags(flags);
  options.dataset.construction.slice_size =
      static_cast<int>(flags.GetInt("slice", 20));
  options.graph_model.k_hops = options.dataset.k_hops;
  options.graph_model.epochs = static_cast<int>(flags.GetInt("epochs", 2));
  options.aggregator.epochs =
      static_cast<int>(flags.GetInt("agg_epochs", 4));
  auto created = ba::core::BaClassifier::Create(options);
  BA_CHECK_OK(created.status());
  const auto classifier = std::move(created).value();
  BA_CHECK_OK(classifier->Train(simulator.ledger(), split.train));
  const std::vector<ba::datagen::LabeledAddress>& watched = split.test;

  // Admission sized to the base fleet: at 1x the backlog sits below the
  // high watermark (no shedding); at 4x it crosses and the controller
  // sheds the excess instead of queueing it.
  ba::serve::InferenceEngineOptions engine_options;
  engine_options.num_threads =
      static_cast<int>(flags.GetInt("threads", 2));
  // A cache big enough to hold the whole watch list turns this bench
  // into a memcache read loop; capping it at a quarter of the list
  // keeps the LRU churning so most requests pay for real graph
  // construction + encoder work — the load the admission layer exists
  // to protect.
  engine_options.cache_capacity = static_cast<size_t>(flags.GetInt(
      "cache-capacity",
      std::max<int64_t>(1, static_cast<int64_t>(watched.size()) / 4)));
  engine_options.enable_admission = true;
  engine_options.admission.max_inflight = 16 * base_clients;
  // The watermark caps the admitted backlog just above the 1x fleet's
  // natural depth: the base load never sheds, while overload beyond it
  // is rejected instead of queued — which is exactly what keeps the
  // admitted p99 flat across load multiples.
  engine_options.admission.high_watermark = base_clients + 2;
  engine_options.admission.low_watermark = std::max(1, base_clients / 2);
  engine_options.admission.recovery_rate = 500.0;
  engine_options.admission.recovery_burst = base_clients;
  auto engine = ba::serve::InferenceEngine::Create(
      classifier.get(), &simulator.ledger(), engine_options);
  BA_CHECK_OK(engine.status());

  std::cout << "[setup] watching " << watched.size() << " addresses, "
            << base_clients << " base clients, "
            << ba::TablePrinter::Num(phase_seconds, 1)
            << "s per load phase\n";

  // Sealer: keeps paying the watched addresses so their tx counts move
  // and every poll round does fresh graph work (the monitoring
  // steady-state, not a warm-cache idle loop).
  std::atomic<bool> seal_stop{false};
  std::thread sealer([&] {
    ba::chain::Ledger* ledger = simulator.mutable_ledger();
    uint64_t sealed = 0;
    while (!seal_stop.load(std::memory_order_acquire)) {
      const ba::chain::Timestamp now =
          ledger->block(ledger->height() - 1).timestamp +
          ledger->options().block_interval_seconds;
      BA_CHECK_OK(
          ledger->ApplyCoinbase(now, watched[sealed % watched.size()].address)
              .status());
      BA_CHECK_OK(ledger->SealBlock(now));
      ++sealed;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  std::vector<LoadResult> results;
  for (const int multiple : {1, 2, 4}) {
    const LoadResult r = RunPhase(engine.value().get(), watched, multiple,
                                  multiple * base_clients, phase_seconds);
    std::cout << "[" << multiple << "x] " << r.requests << " requests, "
              << r.admitted << " admitted, " << r.shed << " shed, "
              << r.lost << " lost | p50 "
              << ba::TablePrinter::Num(r.p50_admitted_s * 1e3, 2)
              << "ms p99 "
              << ba::TablePrinter::Num(r.p99_admitted_s * 1e3, 2)
              << "ms admitted, p99 "
              << ba::TablePrinter::Num(r.p99_shed_s * 1e3, 3)
              << "ms shed | "
              << ba::TablePrinter::Num(r.qps, 1) << " qps\n";
    results.push_back(r);
  }
  seal_stop.store(true, std::memory_order_release);
  sealer.join();

  const ba::serve::InferenceMetricsSnapshot m = engine.value()->Metrics();
  std::cout << "\n" << m.ToString();

  // --- Gates ----------------------------------------------------------
  const LoadResult& base = results.front();
  const LoadResult& peak = results.back();
  uint64_t total_lost = 0;
  for (const auto& r : results) total_lost += r.lost;
  const bool gate_lost = total_lost == 0;
  const bool gate_shed_fast = peak.shed == 0 || peak.p99_shed_s < 1e-3;
  const bool gate_p99 = base.admitted > 0 && peak.admitted > 0 &&
                        peak.p99_admitted_s <= 2.0 * base.p99_admitted_s;
  std::cout << "\n[gate] zero lost:        "
            << (gate_lost ? "PASS" : "FAIL") << " (" << total_lost
            << " lost)\n"
            << "[gate] shed p99 < 1ms:   "
            << (gate_shed_fast ? "PASS" : "FAIL") << " ("
            << ba::TablePrinter::Num(peak.p99_shed_s * 1e6, 1)
            << "us at 4x)\n"
            << "[gate] p99(4x) <= 2x p99(1x): "
            << (gate_p99 ? "PASS" : "FAIL") << " ("
            << ba::TablePrinter::Num(peak.p99_admitted_s * 1e3, 2)
            << "ms vs "
            << ba::TablePrinter::Num(base.p99_admitted_s * 1e3, 2)
            << "ms)\n";

  const std::string out_path =
      flags.GetString("out", "BENCH_overload.json");
  std::ofstream out(out_path, std::ios::trunc);
  out << "{\"loads\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i) out << ",";
    out << results[i].ToJson();
  }
  out << "],\"gates\":{\"zero_lost\":" << (gate_lost ? "true" : "false")
      << ",\"shed_fast\":" << (gate_shed_fast ? "true" : "false")
      << ",\"p99_bounded\":" << (gate_p99 ? "true" : "false")
      << "},\"base_clients\":" << base_clients
      << ",\"phase_seconds\":" << phase_seconds
      << ",\"engine\":" << m.ToJson()
      << ",\"meta\":" << ba::bench::BenchMetaJson(flags, "serve_overload") << "}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return (gate_lost && gate_shed_fast && gate_p99) ? 0 : 1;
}
