// Network loadgen: drives the ba_serve front end the way a monitoring
// fleet would, and proves the wire adds little over the in-process
// engine.
//
// Phases (self-contained mode — builds its own economy + server):
//
//   inproc    InferenceEngine::Classify from --clients threads over
//             --rounds polling rounds, cold cache — the exact
//             measurement bench_serve_throughput's engine phase makes,
//             giving the qps baseline the wire is held against
//   net       a fleet of --connections blocking net::Client loops over
//             loopback TCP; gate: >= 80% of the in-process qps
//   churn     connect / one query / disconnect cycles (accept path,
//             teardown path, fd reuse)
//   overload  a second engine with tight admission watermarks behind
//             its own server, flooded by pipelined loader connections
//             to >= 4x its admitted capacity (verified by measurement)
//             while the batch pipeline is artificially slowed — probe
//             threads check shed answers come back fast (p99 < 5ms),
//             which is the whole point of admission control reaching
//             the socket layer
//   abuse     malformed-frame probes (bad magic, wrong version, CRC
//             flip, oversized length, truncation, slow-loris) — every
//             case must answer a descriptive error or close cleanly,
//             never hang, and the server must keep serving afterwards
//
// With --connect <port> the fleet/churn/abuse phases run against an
// external ba_serve instead (no baseline, no overload — those need
// in-process state); this is what `scripts/check.sh net` does.
//
// "Lost" counts transport failures only — refused connects, resets,
// read timeouts (a hung server). Application answers (shed, invalid
// address) rode the wire fine and count as served.
//
// Writes BENCH_net.json (--out) with per-phase numbers, gate verdicts
// and the standard provenance meta. Exit code 0 iff every applicable
// gate passed.

#include <algorithm>
#include <atomic>
#include <fstream>
#include <functional>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/classifier.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/inference_engine.h"
#include "util/fs.h"

namespace {

constexpr const char* kHost = "127.0.0.1";

struct PhaseStats {
  double qps = 0.0;
  std::vector<double> latencies;  // seconds, answered requests only
  uint64_t ok = 0;
  uint64_t shed = 0;
  /// Transport-level failures: refused connects, resets, timeouts —
  /// the "lost or hung" count the acceptance gate wants at zero.
  uint64_t lost = 0;
};

double PercentileMs(std::vector<double>* lat, double p) {
  if (lat->empty()) return 0.0;
  std::sort(lat->begin(), lat->end());
  const size_t idx = std::min(
      lat->size() - 1,
      static_cast<size_t>(p / 100.0 * static_cast<double>(lat->size())));
  return (*lat)[idx] * 1e3;
}

bool IsTransportFailure(const ba::Status& status) {
  // DeadlineExceeded here means the client's recv timeout fired (the
  // fleet sets no request deadlines) — i.e. the server hung.
  return status.code() == ba::StatusCode::kDeadlineExceeded ||
         status.code() == ba::StatusCode::kInternal;
}

/// Closed-loop fleet over TCP: every thread owns one connection and
/// issues back-to-back queries until the deadline. Addresses come from
/// `pool` when non-empty (all known-classifiable), else round-robin
/// over [0, address_max).
PhaseStats RunNetFleet(uint16_t port, int connections, double seconds,
                       const std::vector<uint64_t>& pool,
                       uint64_t address_max) {
  PhaseStats stats;
  std::vector<std::thread> workers;
  std::vector<PhaseStats> per_thread(static_cast<size_t>(connections));
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));
  for (int c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      PhaseStats& mine = per_thread[static_cast<size_t>(c)];
      auto client = ba::net::Client::Connect(kHost, port);
      if (!client.ok()) {
        ++mine.lost;
        return;
      }
      uint64_t i = static_cast<uint64_t>(c);
      while (std::chrono::steady_clock::now() < deadline) {
        const uint64_t address =
            pool.empty() ? i % address_max : pool[i % pool.size()];
        i += 13;
        // Every bench request carries trace context, so the measured
        // qps includes the v2 wire fields, per-request timelines and
        // flight-recorder writes — the always-on cost this benchmark
        // gates.
        ba::serve::ClassifyOptions copts;
        copts.trace_id = (static_cast<uint64_t>(c) + 1) << 32 | (i & 0xFFFFFFFF);
        const auto start = std::chrono::steady_clock::now();
        const auto result = client.value().Classify(address, copts);
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (result.ok()) {
          ++mine.ok;
          mine.latencies.push_back(elapsed);
        } else if (result.status().code() ==
                   ba::StatusCode::kResourceExhausted) {
          ++mine.shed;
          mine.latencies.push_back(elapsed);
        } else if (IsTransportFailure(result.status())) {
          ++mine.lost;  // the connection is useless now
          return;
        } else {
          ++mine.ok;  // app-level answer (e.g. unknown address)
          mine.latencies.push_back(elapsed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (auto& t : per_thread) {
    stats.ok += t.ok;
    stats.shed += t.shed;
    stats.lost += t.lost;
    stats.latencies.insert(stats.latencies.end(), t.latencies.begin(),
                           t.latencies.end());
  }
  stats.qps = static_cast<double>(stats.ok + stats.shed) / seconds;
  return stats;
}

struct OverloadResult {
  /// Probe-observed shed latencies, seconds. Probes are a handful of
  /// closed-loop threads, so the numbers measure the server's
  /// rejection path — not the scheduler queueing that hundreds of
  /// client threads would add on a small machine.
  std::vector<double> shed_latencies;
  uint64_t offered = 0;   // requests answered (any code)
  uint64_t admitted = 0;  // ok answers
  uint64_t shed = 0;
  uint64_t lost = 0;
};

/// Floods the server far past its admission capacity: a few loader
/// threads each cycle a set of pipelined connections (send a window,
/// drain a window), while probe threads measure how fast sheds come
/// back. Overload is verified by measurement — offered/admitted is
/// reported and gated at >= 4x.
OverloadResult RunOverload(uint16_t port, int background_conns,
                           double seconds,
                           const std::vector<uint64_t>& pool) {
  constexpr int kLoaderThreads = 2;
  constexpr int kProbeThreads = 2;
  constexpr int kWindow = 2;  // pipelined requests per conn per cycle
  OverloadResult result;
  std::atomic<uint64_t> offered{0}, admitted{0}, shed{0}, lost{0};
  std::vector<std::vector<double>> probe_lat(
      static_cast<size_t>(kProbeThreads));
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(seconds));

  std::vector<std::thread> workers;
  for (int t = 0; t < kLoaderThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<ba::net::Client> conns;
      const int mine = background_conns / kLoaderThreads;
      for (int c = 0; c < mine; ++c) {
        auto client = ba::net::Client::Connect(kHost, port);
        if (!client.ok()) {
          lost.fetch_add(1);
          continue;
        }
        conns.push_back(std::move(client).value());
      }
      uint64_t i = static_cast<uint64_t>(t);
      uint64_t id = 1;
      while (std::chrono::steady_clock::now() < deadline &&
             !conns.empty()) {
        for (size_t c = 0; c < conns.size(); ++c) {
          for (int w = 0; w < kWindow; ++w) {
            if (!conns[c].Send(id++, pool[i % pool.size()]).ok()) {
              lost.fetch_add(1);
              conns.erase(conns.begin() + static_cast<long>(c--));
              break;
            }
            i += 7;
          }
        }
        for (size_t c = 0; c < conns.size(); ++c) {
          for (int w = 0; w < kWindow; ++w) {
            const auto resp = conns[c].ReadResponse();
            if (!resp.ok()) {
              lost.fetch_add(1);
              conns.erase(conns.begin() + static_cast<long>(c--));
              break;
            }
            offered.fetch_add(1);
            if (resp.value().ToResult().ok()) {
              admitted.fetch_add(1);
            } else if (resp.value().ToResult().status().code() ==
                       ba::StatusCode::kResourceExhausted) {
              shed.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (int p = 0; p < kProbeThreads; ++p) {
    workers.emplace_back([&, p] {
      auto client = ba::net::Client::Connect(kHost, port);
      if (!client.ok()) {
        lost.fetch_add(1);
        return;
      }
      uint64_t i = static_cast<uint64_t>(p);
      while (std::chrono::steady_clock::now() < deadline) {
        const auto start = std::chrono::steady_clock::now();
        const auto r = client.value().Classify(pool[i % pool.size()]);
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        i += 7;
        if (r.ok()) {
          offered.fetch_add(1);
          admitted.fetch_add(1);
        } else if (r.status().code() ==
                   ba::StatusCode::kResourceExhausted) {
          offered.fetch_add(1);
          shed.fetch_add(1);
          probe_lat[static_cast<size_t>(p)].push_back(elapsed);
        } else if (IsTransportFailure(r.status())) {
          lost.fetch_add(1);
          return;
        } else {
          offered.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (auto& v : probe_lat) {
    result.shed_latencies.insert(result.shed_latencies.end(), v.begin(),
                                 v.end());
  }
  result.offered = offered.load();
  result.admitted = admitted.load();
  result.shed = shed.load();
  result.lost = lost.load();
  return result;
}

/// One abuse probe. Returns true when the server behaved: answered an
/// error frame or closed — anything but a hang — and still serves a
/// well-formed request on a fresh connection afterwards.
bool AbuseCase(const std::string& name, uint16_t port,
               uint64_t good_address,
               const std::function<ba::Status(ba::net::Client*)>& probe) {
  auto victim = ba::net::Client::Connect(kHost, port, /*timeout=*/5.0);
  if (!victim.ok()) {
    std::cout << "  [abuse] " << name << ": connect failed: "
              << victim.status().message() << "\n";
    return false;
  }
  const ba::Status sent = probe(&victim.value());
  if (!sent.ok()) {
    std::cout << "  [abuse] " << name << ": probe send failed: "
              << sent.message() << "\n";
    return false;
  }
  // Whatever comes back must come back *promptly*: an error response,
  // a clean close, or — for probes that stay syntactically valid — a
  // real answer. The 5s read timeout is the hang detector.
  const auto answer = victim.value().ReadResponse();
  if (!answer.ok() &&
      answer.status().code() == ba::StatusCode::kDeadlineExceeded) {
    std::cout << "  [abuse] " << name
              << ": server hung (no reply within 5s)\n";
    return false;
  }
  // The server must survive the probe.
  auto after = ba::net::Client::Connect(kHost, port, /*timeout=*/5.0);
  if (!after.ok() || !after.value().Classify(good_address).ok()) {
    std::cout << "  [abuse] " << name
              << ": server no longer answers well-formed requests\n";
    return false;
  }
  std::cout << "  [abuse] " << name << ": ok ("
            << (answer.ok() ? "answered" : answer.status().message())
            << ")\n";
  return true;
}

int RunAbuseSuite(uint16_t port, uint64_t good_address) {
  using ba::net::Client;
  using ba::serve::EncodeFrame;
  using ba::serve::MessageType;
  int failures = 0;

  // A valid frame to mutate.
  ba::serve::ClassifyRequest req;
  req.request_id = 7;
  req.address = good_address;
  const std::string valid = EncodeFrame(
      MessageType::kClassifyRequest,
      req.EncodePayload(std::chrono::steady_clock::now()));

  failures += !AbuseCase("bad-magic", port, good_address, [](Client* c) {
    return c->SendRaw("NOPE0123456789abcdef");
  });
  failures += !AbuseCase("wrong-version", port, good_address,
                         [&valid](Client* c) {
                           std::string f = valid;
                           f[4] = char(0x77);  // version word
                           f[5] = char(0x77);
                           return c->SendRaw(f);
                         });
  failures += !AbuseCase("crc-flip", port, good_address,
                         [&valid](Client* c) {
                           std::string f = valid;
                           f.back() = static_cast<char>(f.back() ^ 0x5A);
                           return c->SendRaw(f);
                         });
  failures += !AbuseCase(
      "oversized-length", port, good_address, [](Client* c) {
        std::string f("BANP", 4);
        const uint16_t version = ba::serve::kWireVersion;
        const uint16_t type = 1;
        const uint32_t huge = 64u << 20;  // 64MiB claim
        f.append(reinterpret_cast<const char*>(&version), 2);
        f.append(reinterpret_cast<const char*>(&type), 2);
        f.append(reinterpret_cast<const char*>(&huge), 4);
        return c->SendRaw(f);
      });
  failures += !AbuseCase("truncated-then-eof", port, good_address,
                         [&valid](Client* c) {
                           BA_RETURN_NOT_OK(c->SendRaw(
                               std::string_view(valid).substr(
                                   0, valid.size() / 2)));
                           return c->ShutdownWrite();
                         });
  failures += !AbuseCase("slow-loris-completes", port, good_address,
                         [&valid](Client* c) {
                           // One byte at a time: the reassembler must
                           // still produce the frame, and the answer
                           // must be a real classification.
                           for (char b : valid) {
                             BA_RETURN_NOT_OK(
                                 c->SendRaw(std::string_view(&b, 1)));
                             std::this_thread::sleep_for(
                                 std::chrono::microseconds(200));
                           }
                           return ba::Status::OK();
                         });
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  const int connections =
      static_cast<int>(flags.GetInt("connections", 64));
  const double seconds = flags.GetDouble("seconds", 2.0);
  const double overload_seconds =
      flags.GetDouble("overload-seconds", 1.5);
  const int churn_rounds =
      static_cast<int>(flags.GetInt("churn-rounds", 200));
  const std::string out_path = flags.GetString("out", "BENCH_net.json");

  const bool external = flags.Has("connect");
  uint16_t data_port = static_cast<uint16_t>(flags.GetInt("connect", 0));
  uint64_t address_max =
      static_cast<uint64_t>(flags.GetInt("address-max", 200));

  // Self-contained mode: economy, classifier, engine, server — the
  // same shape bench_serve_throughput builds, so the baseline is the
  // same measurement.
  std::unique_ptr<ba::datagen::Simulator> simulator;
  std::unique_ptr<ba::core::BaClassifier> classifier;
  std::unique_ptr<ba::serve::InferenceEngine> engine;
  std::unique_ptr<ba::net::Server> server;
  double inproc_qps = 0.0;
  std::vector<uint64_t> pool;

  if (!external) {
    ba::datagen::ScenarioConfig config =
        ba::bench::ScenarioFromFlags(flags);
    config.num_blocks = static_cast<int>(flags.GetInt("blocks", 120));
    simulator = std::make_unique<ba::datagen::Simulator>(config);
    BA_CHECK_OK(simulator->Run());
    auto labeled = simulator->CollectLabeledAddresses(/*min_txs=*/3);
    ba::Rng rng(config.seed ^ 0xBEEF);
    labeled = ba::datagen::StratifiedSample(
        labeled, flags.GetInt("addresses", 200), &rng);
    const auto split = ba::datagen::StratifiedSplit(labeled, 0.8, &rng);

    ba::core::BaClassifier::Options options;
    options.dataset = ba::bench::DatasetOptionsFromFlags(flags);
    options.dataset.construction.slice_size =
        static_cast<int>(flags.GetInt("slice", 20));
    options.graph_model.k_hops = options.dataset.k_hops;
    options.graph_model.epochs =
        static_cast<int>(flags.GetInt("epochs", 4));
    options.aggregator.epochs =
        static_cast<int>(flags.GetInt("agg_epochs", 8));
    auto created = ba::core::BaClassifier::Create(options);
    BA_CHECK_OK(created.status());
    classifier = std::move(created).value();
    BA_CHECK_OK(classifier->Train(simulator->ledger(), split.train));
    for (const auto& w : split.test) pool.push_back(w.address);
    address_max = simulator->ledger().num_addresses();
    std::cout << "[setup] " << simulator->ledger().num_addresses()
              << " addresses, " << pool.size() << " watched\n";

    ba::serve::InferenceEngineOptions engine_options;
    engine_options.num_threads =
        static_cast<int>(flags.GetInt("engine-threads", 2));
    auto made = ba::serve::InferenceEngine::Create(
        classifier.get(), &simulator->ledger(), engine_options);
    BA_CHECK_OK(made.status());
    engine = std::move(made).value();

    // --- Phase: in-process baseline — bench_serve_throughput's engine
    // measurement reproduced on a cold cache: --clients threads split
    // --rounds polling rounds over the watched set. ---------------------
    const int clients = static_cast<int>(flags.GetInt("clients", 4));
    const int rounds = static_cast<int>(flags.GetInt("rounds", 5));
    {
      ba::Stopwatch watch;
      watch.Start();
      std::vector<std::thread> workers;
      for (int c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          for (int r = c; r < rounds; r += clients) {
            for (const uint64_t address : pool) {
              BA_CHECK_OK(engine->Classify(address).status());
            }
          }
        });
      }
      for (auto& w : workers) w.join();
      watch.Stop();
      inproc_qps = static_cast<double>(pool.size()) * rounds /
                   watch.ElapsedSeconds();
      std::cout << "[inproc] " << ba::TablePrinter::Num(inproc_qps, 1)
                << " qps (" << clients << " clients, " << rounds
                << " rounds, cold cache)\n";
    }
    engine->ClearCache();  // the net fleet re-earns its cache hits

    auto made_server =
        ba::net::Server::Create(engine.get(), &simulator->ledger(), {});
    BA_CHECK_OK(made_server.status());
    server = std::move(made_server).value();
    BA_CHECK_OK(server->Start());
    data_port = server->port();
    std::cout << "[setup] server on port " << data_port << "\n";
  }

  // --- Phase: closed-loop net fleet. ------------------------------------
  PhaseStats net =
      RunNetFleet(data_port, connections, seconds, pool, address_max);
  {
    const double p99 = PercentileMs(&net.latencies, 99.0);
    std::cout << "[net] " << ba::TablePrinter::Num(net.qps, 1)
              << " qps, " << net.ok << " ok / " << net.shed << " shed / "
              << net.lost << " lost, p99 "
              << ba::TablePrinter::Num(p99, 2) << "ms";
    if (inproc_qps > 0) {
      std::cout << " ("
                << ba::TablePrinter::Num(100.0 * net.qps / inproc_qps, 1)
                << "% of in-process)";
    }
    std::cout << "\n";
  }

  // --- Phase: connection churn. -----------------------------------------
  uint64_t churn_failures = 0;
  {
    const int churn_threads = std::min(connections, 16);
    std::vector<std::thread> workers;
    std::atomic<uint64_t> failures{0};
    for (int t = 0; t < churn_threads; ++t) {
      workers.emplace_back([&, t] {
        for (int r = t; r < churn_rounds; r += churn_threads) {
          auto client = ba::net::Client::Connect(kHost, data_port);
          if (!client.ok()) {
            failures.fetch_add(1);
            continue;
          }
          const uint64_t address =
              pool.empty() ? static_cast<uint64_t>(r) % address_max
                           : pool[static_cast<size_t>(r) % pool.size()];
          const auto result = client.value().Classify(address);
          if (!result.ok() && IsTransportFailure(result.status())) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    churn_failures = failures.load();
    std::cout << "[churn] " << churn_rounds
              << " connect/query/close rounds, " << churn_failures
              << " failures\n";
  }

  // --- Phase: overload against a tight-admission server. ----------------
  OverloadResult overload;
  double overload_factor = 0.0;
  double shed_p50_ms = 0.0;
  double shed_p99_ms = 0.0;
  if (!external) {
    ba::serve::InferenceEngineOptions tight;
    tight.num_threads = 2;
    tight.enable_admission = true;
    tight.admission.max_inflight = 64;
    tight.admission.high_watermark = 3;
    tight.admission.low_watermark = 1;
    auto made = ba::serve::InferenceEngine::Create(
        classifier.get(), &simulator->ledger(), tight);
    BA_CHECK_OK(made.status());
    auto overload_engine = std::move(made).value();
    auto made_server = ba::net::Server::Create(
        overload_engine.get(), &simulator->ledger(), {});
    BA_CHECK_OK(made_server.status());
    auto overload_server = std::move(made_server).value();
    BA_CHECK_OK(overload_server->Start());

    // Stall the batch pipeline so the backlog outruns the watermark —
    // the admission controller, not queueing, must answer the flood.
    ba::util::FaultInjector::Instance().ArmLatency(
        ba::serve::InferenceEngine::kFaultBatchBuild, 0.02);
    overload = RunOverload(overload_server->port(), connections,
                           overload_seconds, pool);
    ba::util::FaultInjector::Instance().DisarmAll();
    overload_server->Stop();

    overload_factor =
        overload.admitted > 0
            ? static_cast<double>(overload.offered) /
                  static_cast<double>(overload.admitted)
            : static_cast<double>(overload.offered);
    shed_p50_ms = PercentileMs(&overload.shed_latencies, 50.0);
    shed_p99_ms = PercentileMs(&overload.shed_latencies, 99.0);
    std::cout << "[overload] " << overload.offered << " offered / "
              << overload.admitted << " admitted ("
              << ba::TablePrinter::Num(overload_factor, 1)
              << "x capacity), " << overload.shed << " shed, probe p50 "
              << ba::TablePrinter::Num(shed_p50_ms, 2) << "ms / p99 "
              << ba::TablePrinter::Num(shed_p99_ms, 2) << "ms, "
              << overload.lost << " lost\n";
  }

  // --- Phase: malformed-frame abuse. ------------------------------------
  const uint64_t good_address = pool.empty() ? 0 : pool.front();
  const int abuse_failures = RunAbuseSuite(data_port, good_address);
  std::cout << "[abuse] 6 cases, " << abuse_failures << " failures\n";

  if (server != nullptr) server->Stop();

  // --- Gates + JSON. -----------------------------------------------------
  const double qps_ratio = inproc_qps > 0 ? net.qps / inproc_qps : 0.0;
  const bool gate_ratio = external || qps_ratio >= 0.8;
  const bool gate_shed =
      external || (overload.shed > 0 && overload_factor >= 4.0 &&
                   shed_p99_ms < 5.0);
  const bool gate_lost =
      net.lost == 0 && churn_failures == 0 && overload.lost == 0;
  const bool gate_abuse = abuse_failures == 0;
  const bool all_ok = gate_ratio && gate_shed && gate_lost && gate_abuse;

  std::ofstream out(out_path, std::ios::trunc);
  out << "{\"mode\":\"" << (external ? "external" : "self_contained")
      << "\",\"connections\":" << connections
      << ",\"seconds\":" << seconds << ",\"inproc_qps\":" << inproc_qps
      << ",\"net_qps\":" << net.qps << ",\"qps_ratio\":" << qps_ratio
      << ",\"net_ok\":" << net.ok << ",\"net_shed\":" << net.shed
      << ",\"net_p50_ms\":" << PercentileMs(&net.latencies, 50.0)
      << ",\"net_p99_ms\":" << PercentileMs(&net.latencies, 99.0)
      << ",\"churn_rounds\":" << churn_rounds
      << ",\"churn_failures\":" << churn_failures
      << ",\"overload_offered\":" << overload.offered
      << ",\"overload_admitted\":" << overload.admitted
      << ",\"overload_factor\":" << overload_factor
      << ",\"overload_shed\":" << overload.shed
      << ",\"shed_p50_ms\":" << shed_p50_ms
      << ",\"shed_p99_ms\":" << shed_p99_ms << ",\"lost_connections\":"
      << (net.lost + churn_failures + overload.lost)
      << ",\"abuse_failures\":" << abuse_failures
      << ",\"gates\":{\"qps_ratio_ok\":"
      << (gate_ratio ? "true" : "false")
      << ",\"shed_p99_ok\":" << (gate_shed ? "true" : "false")
      << ",\"zero_lost_ok\":" << (gate_lost ? "true" : "false")
      << ",\"abuse_ok\":" << (gate_abuse ? "true" : "false")
      << ",\"all_ok\":" << (all_ok ? "true" : "false") << "}";
  if (engine != nullptr) {
    out << ",\"engine\":" << engine->Metrics().ToJson();
  }
  out << ",\"meta\":" << ba::bench::BenchMetaJson(flags, "net_loadgen") << "}\n";
  std::cout << "\nwrote " << out_path
            << (all_ok ? " (all gates ok)\n" : " (GATE FAILURE)\n");
  return all_ok ? 0 : 1;
}
