// Reproduces Fig 6: learning-efficiency comparison of the six address
// classification models (LSTM+MLP vs BiLSTM / Attention / SUM / AVG /
// MAX + MLP) over epochs and wall-clock.
//
// Paper's shape: LSTM+MLP is consistently best across epochs and time.

#include <iostream>

#include "bench/bench_common.h"
#include "core/aggregator.h"
#include "core/classifier.h"
#include "core/graph_model.h"

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  auto exp = ba::bench::BuildExperiment(flags);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 60));

  // Shared frozen GFN encoder.
  ba::core::GraphModelOptions gopts;
  gopts.epochs = static_cast<int>(flags.GetInt("gfn_epochs", 25));
  gopts.seed = seed;
  gopts.k_hops = static_cast<int>(flags.GetInt("khops", 2));
  ba::core::GraphModel gfn(gopts);
  gfn.Train(exp.train);
  auto train_seq = ba::core::BuildEmbeddingSequences(gfn, exp.train);
  auto test_seq = ba::core::BuildEmbeddingSequences(gfn, exp.test);
  const auto scaler = ba::core::EmbeddingScaler::Fit(train_seq);
  scaler.Apply(&train_seq);
  scaler.Apply(&test_seq);

  struct Curve {
    std::string name;
    std::vector<ba::core::EpochStat> history;
  };
  std::vector<Curve> curves;
  for (ba::core::AggregatorKind kind : ba::core::AllAggregators()) {
    ba::core::AggregatorOptions opts;
    opts.kind = kind;
    opts.embed_dim = gfn.embed_dim();
    opts.epochs = epochs;
    opts.seed = seed + 1;
    ba::core::AggregatorModel agg(opts);
    Curve curve{ba::core::AggregatorName(kind), {}};
    agg.Train(train_seq, &test_seq, &curve.history);
    std::cout << "[train] " << curve.name << " done ("
              << ba::TablePrinter::Num(curve.history.back().seconds, 2)
              << "s)\n";
    curves.push_back(std::move(curve));
  }

  std::vector<std::string> header{"Epoch"};
  for (const auto& c : curves) header.push_back(c.name + " F1");
  ba::TablePrinter by_epoch(header);
  for (int e = 0; e < epochs; ++e) {
    std::vector<std::string> row{std::to_string(e + 1)};
    for (const auto& c : curves) {
      row.push_back(ba::TablePrinter::Num(
          c.history[static_cast<size_t>(e)].eval_f1));
    }
    by_epoch.AddRow(row);
  }
  by_epoch.Print(std::cout,
                 "Fig 6 (left) — test weighted F1 vs epoch (paper shape: "
                 "LSTM+MLP consistently on top)");

  ba::TablePrinter by_time({"Model", "Epoch", "Cumulative seconds", "Test F1"});
  for (const auto& c : curves) {
    for (const auto& stat : c.history) {
      by_time.AddRow({c.name, std::to_string(stat.epoch),
                      ba::TablePrinter::Num(stat.seconds, 3),
                      ba::TablePrinter::Num(stat.eval_f1)});
    }
    by_time.AddSeparator();
  }
  by_time.Print(std::cout,
                "Fig 6 (right) — test weighted F1 vs cumulative training "
                "time");
  return 0;
}
