// Serving throughput: batched + cached InferenceEngine vs the serial
// BaClassifier::Predict facade on a repeat-query monitoring workload
// (every client polls every watched address each round — the BitScope
// cadence). Reports queries/sec, latency percentiles and cache
// effectiveness, and writes a machine-readable BENCH_serve.json.
//
//   ./build/bench/bench_serve_throughput [--blocks 150] [--addresses 200]
//       [--rounds 5] [--clients 4] [--threads 2] [--out BENCH_serve.json]
//
// With --precision int8 the bench instead compares an fp32 engine
// against an int8 (quantized embed path) engine on a cold-cache,
// embed-bound workload (--hidden defaults to 1024 there so the node MLP
// dominates): every sweep clears the cache, so each query pays graph
// construction + encoder forward. Gates: int8 qps >= 1.3x fp32, and
// the two engines' label accuracy may differ by at most 0.5 points.

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/classifier.h"
#include "serve/inference_engine.h"

namespace {

/// Queries every address once per round through the serial facade — the
/// pre-engine deployment story: full graph rebuild on every query.
double SerialQps(const ba::core::BaClassifier& classifier,
                 const ba::chain::Ledger& ledger,
                 const std::vector<ba::datagen::LabeledAddress>& watched,
                 int rounds) {
  ba::Stopwatch watch;
  watch.Start();
  for (int r = 0; r < rounds; ++r) {
    for (const auto& address : watched) {
      std::vector<int> predicted;
      BA_CHECK_OK(classifier.Predict(ledger, {address}, &predicted));
    }
  }
  watch.Stop();
  return static_cast<double>(watched.size()) * rounds /
         watch.ElapsedSeconds();
}

/// Cold-cache engine sweep: every sweep clears the cache, then
/// `clients` threads split the watched set. Returns queries/sec over
/// all sweeps (each query rebuilds + re-embeds its graphs — the
/// embed-bound shape the precision comparison needs).
double ColdCacheQps(ba::serve::InferenceEngine* engine,
                    const std::vector<ba::datagen::LabeledAddress>& watched,
                    int sweeps, int clients) {
  ba::Stopwatch watch;
  watch.Start();
  for (int s = 0; s < sweeps; ++s) {
    engine->ClearCache();
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        for (size_t i = static_cast<size_t>(c); i < watched.size();
             i += static_cast<size_t>(clients)) {
          BA_CHECK_OK(engine->Classify(watched[i].address).status());
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  watch.Stop();
  return static_cast<double>(watched.size()) * sweeps /
         watch.ElapsedSeconds();
}

/// Label accuracy of fresh (cold-cache) engine predictions.
double EngineAccuracy(ba::serve::InferenceEngine* engine,
                      const std::vector<ba::datagen::LabeledAddress>& watched) {
  engine->ClearCache();
  size_t correct = 0;
  for (const auto& address : watched) {
    auto result = engine->Classify(address.address);
    BA_CHECK_OK(result.status());
    if (result.value().predicted == static_cast<int>(address.label)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(watched.size());
}

}  // namespace

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  const int rounds = static_cast<int>(flags.GetInt("rounds", 5));
  const int clients = static_cast<int>(flags.GetInt("clients", 4));
  const std::string precision = flags.GetString("precision", "fp32");
  BA_CHECK(precision == "fp32" || precision == "int8");

  ba::datagen::ScenarioConfig config = ba::bench::ScenarioFromFlags(flags);
  config.num_blocks = static_cast<int>(flags.GetInt("blocks", 150));
  ba::datagen::Simulator simulator(config);
  BA_CHECK_OK(simulator.Run());
  auto labeled = simulator.CollectLabeledAddresses(/*min_txs=*/3);
  ba::Rng rng(config.seed ^ 0xBEEF);
  labeled = ba::datagen::StratifiedSample(
      labeled, flags.GetInt("addresses", 200), &rng);
  const auto split = ba::datagen::StratifiedSplit(labeled, 0.8, &rng);

  ba::core::BaClassifier::Options options;
  options.dataset = ba::bench::DatasetOptionsFromFlags(flags);
  options.dataset.construction.slice_size =
      static_cast<int>(flags.GetInt("slice", 20));
  options.graph_model.k_hops = options.dataset.k_hops;
  options.graph_model.epochs = static_cast<int>(flags.GetInt("epochs", 4));
  // The precision comparison wants an embed-bound workload, so the
  // node MLP defaults wider there; fp32 mode keeps the model defaults.
  options.graph_model.hidden_dim =
      flags.GetInt("hidden", precision == "int8" ? 1024 : 64);
  options.aggregator.epochs =
      static_cast<int>(flags.GetInt("agg_epochs", 8));
  auto created = ba::core::BaClassifier::Create(options);
  BA_CHECK_OK(created.status());
  const auto classifier = std::move(created).value();
  ba::Stopwatch train_watch;
  train_watch.Start();
  BA_CHECK_OK(classifier->Train(simulator.ledger(), split.train));
  train_watch.Stop();

  const std::vector<ba::datagen::LabeledAddress>& watched = split.test;
  std::cout << "[setup] watching " << watched.size() << " addresses, "
            << rounds << " polling rounds, " << clients
            << " clients (trained in "
            << ba::TablePrinter::Num(train_watch.ElapsedSeconds(), 1)
            << "s)\n";

  if (precision == "int8") {
    // --- fp32 engine vs int8 engine, cold-cache (embed-bound). --------
    std::vector<ba::core::AddressSample> calib;
    BA_CHECK_OK(
        classifier->BuildSamples(simulator.ledger(), split.train, &calib));
    BA_CHECK_OK(classifier->Quantize(calib));

    ba::serve::InferenceEngineOptions fp32_options;
    fp32_options.num_threads = static_cast<int>(flags.GetInt("threads", 2));
    ba::serve::InferenceEngineOptions int8_options = fp32_options;
    int8_options.precision = ba::serve::Precision::kInt8;
    auto fp32_engine = ba::serve::InferenceEngine::Create(
        classifier.get(), &simulator.ledger(), fp32_options);
    BA_CHECK_OK(fp32_engine.status());
    auto int8_engine = ba::serve::InferenceEngine::Create(
        classifier.get(), &simulator.ledger(), int8_options);
    BA_CHECK_OK(int8_engine.status());

    // Interleaved best-of-N: scheduling noise on a shared box easily
    // swings a single cold-cache sweep by 20%+, and the gate compares
    // the two engines' best sustainable rates, not two noise draws.
    const int attempts =
        static_cast<int>(flags.GetInt("attempts", 3));
    double fp32_qps = 0.0, int8_qps = 0.0;
    for (int a = 0; a < attempts; ++a) {
      fp32_qps = std::max(
          fp32_qps,
          ColdCacheQps(fp32_engine.value().get(), watched, rounds, clients));
      int8_qps = std::max(
          int8_qps,
          ColdCacheQps(int8_engine.value().get(), watched, rounds, clients));
    }
    const double ratio = int8_qps / fp32_qps;
    const double fp32_acc = EngineAccuracy(fp32_engine.value().get(), watched);
    const double int8_acc = EngineAccuracy(int8_engine.value().get(), watched);
    const double acc_delta = std::abs(fp32_acc - int8_acc);
    const bool qps_ok = ratio >= 1.3;
    const bool acc_ok = acc_delta <= 0.005;
    std::cout << "[fp32] " << ba::TablePrinter::Num(fp32_qps, 1)
              << " queries/sec (cold cache)\n"
              << "[int8] " << ba::TablePrinter::Num(int8_qps, 1)
              << " queries/sec (" << ba::TablePrinter::Num(ratio, 2)
              << "x fp32)  gate>=1.3 " << (qps_ok ? "PASS" : "FAIL") << "\n"
              << "[accuracy] fp32 " << ba::TablePrinter::Num(fp32_acc, 4)
              << "  int8 " << ba::TablePrinter::Num(int8_acc, 4)
              << "  delta " << ba::TablePrinter::Num(acc_delta, 4)
              << "  gate<=0.005 " << (acc_ok ? "PASS" : "FAIL") << "\n";

    // Distinct default so an int8 run never clobbers the fp32 json.
    const std::string out_path =
        flags.GetString("out", "BENCH_serve_int8.json");
    std::ofstream out(out_path, std::ios::trunc);
    out << "{\"precision\":\"int8\",\"fp32_qps\":" << fp32_qps
        << ",\"int8_qps\":" << int8_qps << ",\"int8_speedup\":" << ratio
        << ",\"fp32_accuracy\":" << fp32_acc
        << ",\"int8_accuracy\":" << int8_acc
        << ",\"accuracy_delta\":" << acc_delta
        << ",\"sweeps\":" << rounds << ",\"clients\":" << clients
        << ",\"watched_addresses\":" << watched.size()
        << ",\"hidden_dim\":" << options.graph_model.hidden_dim
        << ",\"train_seconds\":" << train_watch.ElapsedSeconds()
        << ",\"int8_engine\":" << int8_engine.value()->Metrics().ToJson()
        << ",\"meta\":"
        << ba::bench::BenchMetaJson(flags, "serve_throughput") << "}\n";
    std::cout << "\nwrote " << out_path << "\n";
    return (qps_ok && acc_ok) ? 0 : 1;
  }

  // --- Baseline: serial facade, full rebuild per query. ---------------
  const double serial_qps =
      SerialQps(*classifier, simulator.ledger(), watched, rounds);
  std::cout << "[serial] " << ba::TablePrinter::Num(serial_qps, 1)
            << " queries/sec\n";

  // --- Engine: micro-batched clients over the shared cache. -----------
  ba::serve::InferenceEngineOptions engine_options;
  engine_options.num_threads =
      static_cast<int>(flags.GetInt("threads", 2));
  auto engine = ba::serve::InferenceEngine::Create(
      classifier.get(), &simulator.ledger(), engine_options);
  BA_CHECK_OK(engine.status());

  ba::Stopwatch watch;
  watch.Start();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      // Clients split the rounds so total query count matches serial.
      for (int r = c; r < rounds; r += clients) {
        for (const auto& address : watched) {
          BA_CHECK_OK(engine.value()->Classify(address.address).status());
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  watch.Stop();
  const double engine_qps = static_cast<double>(watched.size()) * rounds /
                            watch.ElapsedSeconds();
  const ba::serve::InferenceMetricsSnapshot m = engine.value()->Metrics();
  const double speedup = engine_qps / serial_qps;
  std::cout << "[engine] " << ba::TablePrinter::Num(engine_qps, 1)
            << " queries/sec (" << ba::TablePrinter::Num(speedup, 2)
            << "x serial)\n\n"
            << m.ToString();

  const std::string out_path =
      flags.GetString("out", "BENCH_serve.json");
  std::ofstream out(out_path, std::ios::trunc);
  out << "{\"serial_qps\":" << serial_qps
      << ",\"engine_qps\":" << engine_qps << ",\"speedup\":" << speedup
      << ",\"rounds\":" << rounds << ",\"clients\":" << clients
      << ",\"watched_addresses\":" << watched.size()
      << ",\"train_seconds\":" << train_watch.ElapsedSeconds()
      << ",\"engine\":" << m.ToJson()
      << ",\"meta\":" << ba::bench::BenchMetaJson(flags, "serve_throughput") << "}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return speedup >= 3.0 ? 0 : 1;
}
