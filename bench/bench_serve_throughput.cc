// Serving throughput: batched + cached InferenceEngine vs the serial
// BaClassifier::Predict facade on a repeat-query monitoring workload
// (every client polls every watched address each round — the BitScope
// cadence). Reports queries/sec, latency percentiles and cache
// effectiveness, and writes a machine-readable BENCH_serve.json.
//
//   ./build/bench/bench_serve_throughput [--blocks 150] [--addresses 200]
//       [--rounds 5] [--clients 4] [--threads 2] [--out BENCH_serve.json]

#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/classifier.h"
#include "serve/inference_engine.h"

namespace {

/// Queries every address once per round through the serial facade — the
/// pre-engine deployment story: full graph rebuild on every query.
double SerialQps(const ba::core::BaClassifier& classifier,
                 const ba::chain::Ledger& ledger,
                 const std::vector<ba::datagen::LabeledAddress>& watched,
                 int rounds) {
  ba::Stopwatch watch;
  watch.Start();
  for (int r = 0; r < rounds; ++r) {
    for (const auto& address : watched) {
      std::vector<int> predicted;
      BA_CHECK_OK(classifier.Predict(ledger, {address}, &predicted));
    }
  }
  watch.Stop();
  return static_cast<double>(watched.size()) * rounds /
         watch.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  const int rounds = static_cast<int>(flags.GetInt("rounds", 5));
  const int clients = static_cast<int>(flags.GetInt("clients", 4));

  ba::datagen::ScenarioConfig config = ba::bench::ScenarioFromFlags(flags);
  config.num_blocks = static_cast<int>(flags.GetInt("blocks", 150));
  ba::datagen::Simulator simulator(config);
  BA_CHECK_OK(simulator.Run());
  auto labeled = simulator.CollectLabeledAddresses(/*min_txs=*/3);
  ba::Rng rng(config.seed ^ 0xBEEF);
  labeled = ba::datagen::StratifiedSample(
      labeled, flags.GetInt("addresses", 200), &rng);
  const auto split = ba::datagen::StratifiedSplit(labeled, 0.8, &rng);

  ba::core::BaClassifier::Options options;
  options.dataset = ba::bench::DatasetOptionsFromFlags(flags);
  options.dataset.construction.slice_size =
      static_cast<int>(flags.GetInt("slice", 20));
  options.graph_model.k_hops = options.dataset.k_hops;
  options.graph_model.epochs = static_cast<int>(flags.GetInt("epochs", 4));
  options.aggregator.epochs =
      static_cast<int>(flags.GetInt("agg_epochs", 8));
  auto created = ba::core::BaClassifier::Create(options);
  BA_CHECK_OK(created.status());
  const auto classifier = std::move(created).value();
  ba::Stopwatch train_watch;
  train_watch.Start();
  BA_CHECK_OK(classifier->Train(simulator.ledger(), split.train));
  train_watch.Stop();

  const std::vector<ba::datagen::LabeledAddress>& watched = split.test;
  std::cout << "[setup] watching " << watched.size() << " addresses, "
            << rounds << " polling rounds, " << clients
            << " clients (trained in "
            << ba::TablePrinter::Num(train_watch.ElapsedSeconds(), 1)
            << "s)\n";

  // --- Baseline: serial facade, full rebuild per query. ---------------
  const double serial_qps =
      SerialQps(*classifier, simulator.ledger(), watched, rounds);
  std::cout << "[serial] " << ba::TablePrinter::Num(serial_qps, 1)
            << " queries/sec\n";

  // --- Engine: micro-batched clients over the shared cache. -----------
  ba::serve::InferenceEngineOptions engine_options;
  engine_options.num_threads =
      static_cast<int>(flags.GetInt("threads", 2));
  auto engine = ba::serve::InferenceEngine::Create(
      classifier.get(), &simulator.ledger(), engine_options);
  BA_CHECK_OK(engine.status());

  ba::Stopwatch watch;
  watch.Start();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      // Clients split the rounds so total query count matches serial.
      for (int r = c; r < rounds; r += clients) {
        for (const auto& address : watched) {
          BA_CHECK_OK(engine.value()->Classify(address.address).status());
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  watch.Stop();
  const double engine_qps = static_cast<double>(watched.size()) * rounds /
                            watch.ElapsedSeconds();
  const ba::serve::InferenceMetricsSnapshot m = engine.value()->Metrics();
  const double speedup = engine_qps / serial_qps;
  std::cout << "[engine] " << ba::TablePrinter::Num(engine_qps, 1)
            << " queries/sec (" << ba::TablePrinter::Num(speedup, 2)
            << "x serial)\n\n"
            << m.ToString();

  const std::string out_path =
      flags.GetString("out", "BENCH_serve.json");
  std::ofstream out(out_path, std::ios::trunc);
  out << "{\"serial_qps\":" << serial_qps
      << ",\"engine_qps\":" << engine_qps << ",\"speedup\":" << speedup
      << ",\"rounds\":" << rounds << ",\"clients\":" << clients
      << ",\"watched_addresses\":" << watched.size()
      << ",\"train_seconds\":" << train_watch.ElapsedSeconds()
      << ",\"engine\":" << m.ToJson()
      << ",\"meta\":" << ba::bench::BenchMetaJson(flags, "serve_throughput") << "}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return speedup >= 3.0 ? 0 : 1;
}
