// Serving throughput: batched + cached InferenceEngine vs the serial
// BaClassifier::Predict facade on a repeat-query monitoring workload
// (every client polls every watched address each round — the BitScope
// cadence). Reports queries/sec, latency percentiles and cache
// effectiveness, and writes a machine-readable BENCH_serve.json.
//
//   ./build/bench/bench_serve_throughput [--blocks 150] [--addresses 200]
//       [--rounds 5] [--clients 4] [--threads 2] [--out BENCH_serve.json]
//
// With --precision int8 the bench instead compares an fp32 engine
// against an int8 (quantized embed path) engine on a cold-cache,
// embed-bound workload (--hidden defaults to 1024 there so the node MLP
// dominates): every sweep clears the cache, so each query pays graph
// construction + encoder forward. Gates: int8 qps >= 1.3x fp32, and
// the two engines' label accuracy may differ by at most 0.5 points.
//
// With --engines N (> 0) the bench instead measures the sharded tier
// (serve::ShardedEngine, N consistent-hash shards) against one
// InferenceEngine on the repeat-query workload, plus the
// eviction-aware-admission story: a mixer_hunt-style cold sweep runs
// concurrently with the hot polling clients against small per-shard
// caches, and the sweep detector's no-promote mode must keep the hot
// set's hit rate at >= 90% of its no-sweep value. Gates (at the
// default N = 4): sharded qps >= 3.0x single-engine qps, and the hit-
// rate ratio >= 0.9. Writes BENCH_serve_sharded.json.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <iostream>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench/bench_common.h"
#include "core/classifier.h"
#include "serve/inference_engine.h"
#include "serve/sharded_engine.h"

namespace {

/// Queries every address once per round through the serial facade — the
/// pre-engine deployment story: full graph rebuild on every query.
double SerialQps(const ba::core::BaClassifier& classifier,
                 const ba::chain::Ledger& ledger,
                 const std::vector<ba::datagen::LabeledAddress>& watched,
                 int rounds) {
  ba::Stopwatch watch;
  watch.Start();
  for (int r = 0; r < rounds; ++r) {
    for (const auto& address : watched) {
      std::vector<int> predicted;
      BA_CHECK_OK(classifier.Predict(ledger, {address}, &predicted));
    }
  }
  watch.Stop();
  return static_cast<double>(watched.size()) * rounds /
         watch.ElapsedSeconds();
}

/// Cold-cache engine sweep: every sweep clears the cache, then
/// `clients` threads split the watched set. Returns queries/sec over
/// all sweeps (each query rebuilds + re-embeds its graphs — the
/// embed-bound shape the precision comparison needs).
double ColdCacheQps(ba::serve::InferenceEngine* engine,
                    const std::vector<ba::datagen::LabeledAddress>& watched,
                    int sweeps, int clients) {
  ba::Stopwatch watch;
  watch.Start();
  for (int s = 0; s < sweeps; ++s) {
    engine->ClearCache();
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        for (size_t i = static_cast<size_t>(c); i < watched.size();
             i += static_cast<size_t>(clients)) {
          BA_CHECK_OK(engine->Classify(watched[i].address).status());
        }
      });
    }
    for (auto& w : workers) w.join();
  }
  watch.Stop();
  return static_cast<double>(watched.size()) * sweeps /
         watch.ElapsedSeconds();
}

/// Label accuracy of fresh (cold-cache) engine predictions.
double EngineAccuracy(ba::serve::InferenceEngine* engine,
                      const std::vector<ba::datagen::LabeledAddress>& watched) {
  engine->ClearCache();
  size_t correct = 0;
  for (const auto& address : watched) {
    auto result = engine->Classify(address.address);
    BA_CHECK_OK(result.status());
    if (result.value().predicted == static_cast<int>(address.label)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(watched.size());
}

/// Repeat-query polling qps against any serving surface: `clients`
/// threads each issue blocking single-address queries over the watched
/// set — the network server's shape (one request in flight per
/// connection). On the single engine every client contends on one
/// queue, one leader pipeline and one cache lock; the sharded tier
/// spreads them over N of each, which is where the near-linear scaling
/// comes from when cores are available. Caches warmed by one initial
/// batch.
double HotQps(ba::serve::Engine* engine,
              const std::vector<ba::chain::AddressId>& watched, int rounds,
              int clients) {
  for (const auto& r : engine->ClassifyBatch(watched)) {
    BA_CHECK_OK(r.status());
  }
  ba::Stopwatch watch;
  watch.Start();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (int r = c; r < rounds; r += clients) {
        for (const auto& address : watched) {
          BA_CHECK_OK(engine->Classify(address).status());
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  watch.Stop();
  return static_cast<double>(watched.size()) * rounds /
         watch.ElapsedSeconds();
}

/// Hot-set hit rate while (optionally) a cold sweep hammers the same
/// small per-shard caches from a separate connection identity. The hot
/// clients poll `watched` at a real monitoring cadence — one batch per
/// `poll_interval_ms` — which is exactly when an unprotected full-speed
/// sweep is lethal: dozens of cold insertions land between two polls,
/// pushing the idle hot entries to the LRU floor. The sweeper walks
/// `sweep` (classifiable addresses *outside* the hot set) continuously
/// until the pollers finish. Hits are counted from the hot clients' own
/// results — exact, not a ratio of global counters the sweeper also
/// moves.
double HotHitRate(ba::serve::ShardedEngine* engine,
                  const std::vector<ba::chain::AddressId>& watched,
                  const std::vector<ba::chain::AddressId>& sweep,
                  int rounds, int poll_interval_ms, bool with_sweep) {
  for (const auto& r : engine->ClassifyBatch(watched)) {
    BA_CHECK_OK(r.status());
  }
  std::atomic<bool> stop_sweep{false};
  std::thread sweeper;
  if (with_sweep) {
    sweeper = std::thread([&] {
      ba::serve::ClassifyOptions sweep_options;
      sweep_options.client_id = 0xC01DBEEF;  // one scanning "connection"
      size_t i = 0;
      while (!stop_sweep.load(std::memory_order_relaxed)) {
        BA_CHECK_OK(
            engine->Classify(sweep[i % sweep.size()], sweep_options)
                .status());
        ++i;
      }
    });
  }
  uint64_t hot_hits = 0;
  uint64_t hot_total = 0;
  ba::serve::ClassifyOptions hot_options;
  hot_options.client_id = 1;
  for (int r = 0; r < rounds; ++r) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(poll_interval_ms));
    for (const auto& outcome : engine->ClassifyBatch(watched, hot_options)) {
      BA_CHECK_OK(outcome.status());
      ++hot_total;
      if (outcome.value().cache_hit) ++hot_hits;
    }
  }
  stop_sweep.store(true, std::memory_order_relaxed);
  if (sweeper.joinable()) sweeper.join();
  return hot_total == 0 ? 0.0
                        : static_cast<double>(hot_hits) /
                              static_cast<double>(hot_total);
}

}  // namespace

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  const int rounds = static_cast<int>(flags.GetInt("rounds", 5));
  const int clients = static_cast<int>(flags.GetInt("clients", 4));
  const std::string precision = flags.GetString("precision", "fp32");
  BA_CHECK(precision == "fp32" || precision == "int8");

  ba::datagen::ScenarioConfig config = ba::bench::ScenarioFromFlags(flags);
  config.num_blocks = static_cast<int>(flags.GetInt("blocks", 150));
  ba::datagen::Simulator simulator(config);
  BA_CHECK_OK(simulator.Run());
  auto labeled = simulator.CollectLabeledAddresses(/*min_txs=*/3);
  ba::Rng rng(config.seed ^ 0xBEEF);
  labeled = ba::datagen::StratifiedSample(
      labeled, flags.GetInt("addresses", 200), &rng);
  const auto split = ba::datagen::StratifiedSplit(labeled, 0.8, &rng);

  ba::core::BaClassifier::Options options;
  options.dataset = ba::bench::DatasetOptionsFromFlags(flags);
  options.dataset.construction.slice_size =
      static_cast<int>(flags.GetInt("slice", 20));
  options.graph_model.k_hops = options.dataset.k_hops;
  options.graph_model.epochs = static_cast<int>(flags.GetInt("epochs", 4));
  // The precision comparison wants an embed-bound workload, so the
  // node MLP defaults wider there; fp32 mode keeps the model defaults.
  options.graph_model.hidden_dim =
      flags.GetInt("hidden", precision == "int8" ? 1024 : 64);
  options.aggregator.epochs =
      static_cast<int>(flags.GetInt("agg_epochs", 8));
  auto created = ba::core::BaClassifier::Create(options);
  BA_CHECK_OK(created.status());
  const auto classifier = std::move(created).value();
  ba::Stopwatch train_watch;
  train_watch.Start();
  BA_CHECK_OK(classifier->Train(simulator.ledger(), split.train));
  train_watch.Stop();

  const std::vector<ba::datagen::LabeledAddress>& watched = split.test;
  std::cout << "[setup] watching " << watched.size() << " addresses, "
            << rounds << " polling rounds, " << clients
            << " clients (trained in "
            << ba::TablePrinter::Num(train_watch.ElapsedSeconds(), 1)
            << "s)\n";

  const int engines = static_cast<int>(flags.GetInt("engines", 0));
  if (engines > 0) {
    // --- Sharded tier vs one engine, repeat-query + sweep. ------------
    // Both sides draw workers from the process-wide shared pool so the
    // comparison measures sharding (N queues, N caches, N leader
    // pipelines), not a larger thread budget.
    ba::serve::InferenceEngineOptions base_options;
    base_options.num_threads = 0;
    const int hot_clients = static_cast<int>(
        flags.GetInt("clients", std::max(8, 2 * engines)));
    const int attempts = static_cast<int>(flags.GetInt("attempts", 3));
    // Enough hot polls that a measurement lasts long past thread spawn
    // and scheduler noise (cache hits are microseconds each).
    const int hot_rounds =
        static_cast<int>(flags.GetInt("hot-rounds", 400));
    std::vector<ba::chain::AddressId> hot_list;
    hot_list.reserve(watched.size());
    for (const auto& a : watched) hot_list.push_back(a.address);

    auto single = ba::serve::InferenceEngine::Create(
        classifier.get(), &simulator.ledger(), base_options);
    BA_CHECK_OK(single.status());
    ba::serve::ShardedEngineOptions sharded_options;
    sharded_options.num_engines = engines;
    sharded_options.engine = base_options;
    auto sharded = ba::serve::ShardedEngine::Create(
        classifier.get(), &simulator.ledger(), sharded_options);
    BA_CHECK_OK(sharded.status());

    // Interleaved best-of-N (same rationale as the int8 mode).
    double single_qps = 0.0, sharded_qps = 0.0;
    for (int a = 0; a < attempts; ++a) {
      single_qps = std::max(
          single_qps,
          HotQps(single.value().get(), hot_list, hot_rounds, hot_clients));
      sharded_qps = std::max(
          sharded_qps,
          HotQps(sharded.value().get(), hot_list, hot_rounds, hot_clients));
    }
    const double scaling = sharded_qps / single_qps;
    // Near-linear: >= 0.75x per shard that can actually run in
    // parallel. With >= `engines` cores that is the canonical 3.0x at
    // N = 4; on a smaller box the gate scales to the cores present
    // (a 1-core CI container cannot parallelize anything — there the
    // gate still enforces that routing adds no material overhead).
    const unsigned hw = std::thread::hardware_concurrency();
    const int usable_cores =
        static_cast<int>(std::max(1u, hw == 0 ? 1u : hw));
    const double scaling_gate =
        0.75 * static_cast<double>(std::min(engines, usable_cores));
    const bool qps_ok = scaling >= scaling_gate;
    std::cout << "[single ] " << ba::TablePrinter::Num(single_qps, 1)
              << " queries/sec (hot set)\n"
              << "[sharded] " << ba::TablePrinter::Num(sharded_qps, 1)
              << " queries/sec with " << engines << " engines ("
              << ba::TablePrinter::Num(scaling, 2) << "x single)  gate>="
              << ba::TablePrinter::Num(scaling_gate, 2) << " "
              << (qps_ok ? "PASS" : "FAIL") << "\n";

    // --- Eviction-aware admission: hot set vs cold sweep. -------------
    // Tiny per-shard caches that just fit the hot set, and a sweep over
    // every other classifiable address — without the no-promote mode
    // the sweep would evict the hot set continuously.
    std::unordered_set<ba::chain::AddressId> hot_ids(hot_list.begin(),
                                                     hot_list.end());
    std::vector<ba::chain::AddressId> sweep;
    for (const auto& a : simulator.CollectLabeledAddresses(/*min_txs=*/2)) {
      if (hot_ids.find(a.address) == hot_ids.end()) {
        sweep.push_back(a.address);
      }
    }
    BA_CHECK(!sweep.empty());
    ba::serve::ShardedEngineOptions small_options = sharded_options;
    small_options.engine.cache_capacity = static_cast<size_t>(std::max<int>(
        8, static_cast<int>(flags.GetInt(
               "shard-cache", static_cast<int64_t>(watched.size() * 2 /
                                                   std::max(engines, 1))))));
    small_options.sweep_miss_streak = 8;
    const int poll_rounds =
        static_cast<int>(flags.GetInt("poll-rounds", 25));
    const int poll_interval_ms =
        static_cast<int>(flags.GetInt("poll-interval-ms", 20));
    // Fresh engine per measurement: no detector or cache carry-over.
    auto quiet = ba::serve::ShardedEngine::Create(
        classifier.get(), &simulator.ledger(), small_options);
    BA_CHECK_OK(quiet.status());
    const double hit_rate_quiet =
        HotHitRate(quiet.value().get(), hot_list, sweep, poll_rounds,
                   poll_interval_ms, /*with_sweep=*/false);
    auto swept = ba::serve::ShardedEngine::Create(
        classifier.get(), &simulator.ledger(), small_options);
    BA_CHECK_OK(swept.status());
    const double hit_rate_swept =
        HotHitRate(swept.value().get(), hot_list, sweep, poll_rounds,
                   poll_interval_ms, /*with_sweep=*/true);
    const double hit_ratio =
        hit_rate_quiet > 0.0 ? hit_rate_swept / hit_rate_quiet : 0.0;
    const bool sweep_ok = hit_ratio >= 0.9;
    std::cout << "[hot hit rate] quiet "
              << ba::TablePrinter::Num(hit_rate_quiet, 4) << "  under sweep "
              << ba::TablePrinter::Num(hit_rate_swept, 4) << " (ratio "
              << ba::TablePrinter::Num(hit_ratio, 3) << ", "
              << swept.value()->sweeping_clients()
              << " clients flagged sweeping)  gate>=0.9 "
              << (sweep_ok ? "PASS" : "FAIL") << "\n";

    const std::string out_path =
        flags.GetString("out", "BENCH_serve_sharded.json");
    std::ofstream out(out_path, std::ios::trunc);
    out << "{\"engines\":" << engines << ",\"single_qps\":" << single_qps
        << ",\"sharded_qps\":" << sharded_qps << ",\"scaling\":" << scaling
        << ",\"scaling_gate\":" << scaling_gate
        << ",\"cores\":" << usable_cores
        << ",\"hot_hit_rate_quiet\":" << hit_rate_quiet
        << ",\"hot_hit_rate_swept\":" << hit_rate_swept
        << ",\"hit_rate_ratio\":" << hit_ratio
        << ",\"sweeping_clients\":" << swept.value()->sweeping_clients()
        << ",\"sweep_addresses\":" << sweep.size()
        << ",\"rounds\":" << rounds << ",\"clients\":" << hot_clients
        << ",\"watched_addresses\":" << watched.size()
        << ",\"train_seconds\":" << train_watch.ElapsedSeconds()
        << ",\"sharded\":" << sharded.value()->Metrics().ToJson()
        << ",\"meta\":"
        << ba::bench::BenchMetaJson(flags, "serve_throughput") << "}\n";
    std::cout << "\nwrote " << out_path << "\n";
    return (qps_ok && sweep_ok) ? 0 : 1;
  }

  if (precision == "int8") {
    // --- fp32 engine vs int8 engine, cold-cache (embed-bound). --------
    std::vector<ba::core::AddressSample> calib;
    BA_CHECK_OK(
        classifier->BuildSamples(simulator.ledger(), split.train, &calib));
    BA_CHECK_OK(classifier->Quantize(calib));

    ba::serve::InferenceEngineOptions fp32_options;
    fp32_options.num_threads = static_cast<int>(flags.GetInt("threads", 2));
    ba::serve::InferenceEngineOptions int8_options = fp32_options;
    int8_options.precision = ba::serve::Precision::kInt8;
    auto fp32_engine = ba::serve::InferenceEngine::Create(
        classifier.get(), &simulator.ledger(), fp32_options);
    BA_CHECK_OK(fp32_engine.status());
    auto int8_engine = ba::serve::InferenceEngine::Create(
        classifier.get(), &simulator.ledger(), int8_options);
    BA_CHECK_OK(int8_engine.status());

    // Interleaved best-of-N: scheduling noise on a shared box easily
    // swings a single cold-cache sweep by 20%+, and the gate compares
    // the two engines' best sustainable rates, not two noise draws.
    const int attempts =
        static_cast<int>(flags.GetInt("attempts", 3));
    double fp32_qps = 0.0, int8_qps = 0.0;
    for (int a = 0; a < attempts; ++a) {
      fp32_qps = std::max(
          fp32_qps,
          ColdCacheQps(fp32_engine.value().get(), watched, rounds, clients));
      int8_qps = std::max(
          int8_qps,
          ColdCacheQps(int8_engine.value().get(), watched, rounds, clients));
    }
    const double ratio = int8_qps / fp32_qps;
    const double fp32_acc = EngineAccuracy(fp32_engine.value().get(), watched);
    const double int8_acc = EngineAccuracy(int8_engine.value().get(), watched);
    const double acc_delta = std::abs(fp32_acc - int8_acc);
    const bool qps_ok = ratio >= 1.3;
    const bool acc_ok = acc_delta <= 0.005;
    std::cout << "[fp32] " << ba::TablePrinter::Num(fp32_qps, 1)
              << " queries/sec (cold cache)\n"
              << "[int8] " << ba::TablePrinter::Num(int8_qps, 1)
              << " queries/sec (" << ba::TablePrinter::Num(ratio, 2)
              << "x fp32)  gate>=1.3 " << (qps_ok ? "PASS" : "FAIL") << "\n"
              << "[accuracy] fp32 " << ba::TablePrinter::Num(fp32_acc, 4)
              << "  int8 " << ba::TablePrinter::Num(int8_acc, 4)
              << "  delta " << ba::TablePrinter::Num(acc_delta, 4)
              << "  gate<=0.005 " << (acc_ok ? "PASS" : "FAIL") << "\n";

    // Distinct default so an int8 run never clobbers the fp32 json.
    const std::string out_path =
        flags.GetString("out", "BENCH_serve_int8.json");
    std::ofstream out(out_path, std::ios::trunc);
    out << "{\"precision\":\"int8\",\"fp32_qps\":" << fp32_qps
        << ",\"int8_qps\":" << int8_qps << ",\"int8_speedup\":" << ratio
        << ",\"fp32_accuracy\":" << fp32_acc
        << ",\"int8_accuracy\":" << int8_acc
        << ",\"accuracy_delta\":" << acc_delta
        << ",\"sweeps\":" << rounds << ",\"clients\":" << clients
        << ",\"watched_addresses\":" << watched.size()
        << ",\"hidden_dim\":" << options.graph_model.hidden_dim
        << ",\"train_seconds\":" << train_watch.ElapsedSeconds()
        << ",\"int8_engine\":" << int8_engine.value()->Metrics().ToJson()
        << ",\"meta\":"
        << ba::bench::BenchMetaJson(flags, "serve_throughput") << "}\n";
    std::cout << "\nwrote " << out_path << "\n";
    return (qps_ok && acc_ok) ? 0 : 1;
  }

  // --- Baseline: serial facade, full rebuild per query. ---------------
  const double serial_qps =
      SerialQps(*classifier, simulator.ledger(), watched, rounds);
  std::cout << "[serial] " << ba::TablePrinter::Num(serial_qps, 1)
            << " queries/sec\n";

  // --- Engine: micro-batched clients over the shared cache. -----------
  ba::serve::InferenceEngineOptions engine_options;
  engine_options.num_threads =
      static_cast<int>(flags.GetInt("threads", 2));
  auto engine = ba::serve::InferenceEngine::Create(
      classifier.get(), &simulator.ledger(), engine_options);
  BA_CHECK_OK(engine.status());

  ba::Stopwatch watch;
  watch.Start();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      // Clients split the rounds so total query count matches serial.
      for (int r = c; r < rounds; r += clients) {
        for (const auto& address : watched) {
          BA_CHECK_OK(engine.value()->Classify(address.address).status());
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  watch.Stop();
  const double engine_qps = static_cast<double>(watched.size()) * rounds /
                            watch.ElapsedSeconds();
  const ba::serve::InferenceMetricsSnapshot m = engine.value()->Metrics();
  const double speedup = engine_qps / serial_qps;
  std::cout << "[engine] " << ba::TablePrinter::Num(engine_qps, 1)
            << " queries/sec (" << ba::TablePrinter::Num(speedup, 2)
            << "x serial)\n\n"
            << m.ToString();

  const std::string out_path =
      flags.GetString("out", "BENCH_serve.json");
  std::ofstream out(out_path, std::ios::trunc);
  out << "{\"serial_qps\":" << serial_qps
      << ",\"engine_qps\":" << engine_qps << ",\"speedup\":" << speedup
      << ",\"rounds\":" << rounds << ",\"clients\":" << clients
      << ",\"watched_addresses\":" << watched.size()
      << ",\"train_seconds\":" << train_watch.ElapsedSeconds()
      << ",\"engine\":" << m.ToJson()
      << ",\"meta\":" << ba::bench::BenchMetaJson(flags, "serve_throughput") << "}\n";
  std::cout << "\nwrote " << out_path << "\n";
  return speedup >= 3.0 ? 0 : 1;
}
