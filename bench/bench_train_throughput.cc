// Training-throughput bench: serial vs data-parallel GraphModel::Train
// on the standard datagen economy, asserting the determinism contract
// (identical per-epoch losses at any lane count) and writing
// BENCH_train.json.
//
//   ./build/bench/bench_train_throughput [--blocks 400] [--addresses 700]
//       [--epochs 3] [--threads 8] [--out BENCH_train.json]
//
// --threads sizes the shared pool AND the threaded run's lane count;
// the serial run always uses one lane. Exits non-zero when the two
// runs' per-epoch losses diverge (they must be bit-identical).

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/graph_model.h"

namespace {

/// Trains a fresh model and returns its per-epoch stats.
std::vector<ba::core::EpochStat> RunTraining(
    const ba::bench::Experiment& exp, const ba::CliFlags& flags,
    int num_threads) {
  ba::core::GraphModelOptions options;
  options.encoder = ba::core::GraphEncoderKind::kGfn;
  options.k_hops = static_cast<int>(flags.GetInt("khops", 2));
  options.epochs = static_cast<int>(flags.GetInt("epochs", 3));
  options.batch_size = static_cast<int>(flags.GetInt("batch", 16));
  options.seed = 11;
  options.num_threads = num_threads;
  BA_CHECK_OK(options.Validate());
  ba::core::GraphModel model(options);
  std::vector<ba::core::EpochStat> history;
  BA_CHECK_OK(model.Train(exp.train, nullptr, &history));
  return history;
}

double MeanEpochSeconds(const std::vector<ba::core::EpochStat>& history) {
  // EpochStat.seconds is cumulative; the mean epoch time is total/N.
  return history.empty() ? 0.0
                         : history.back().seconds /
                               static_cast<double>(history.size());
}

}  // namespace

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  const int threads = static_cast<int>(flags.GetInt("threads", 8));
  const ba::bench::Experiment exp = ba::bench::BuildExperiment(flags);

  std::cout << "[train] serial run...\n";
  const auto serial = RunTraining(exp, flags, /*num_threads=*/1);
  std::cout << "[train] threaded run (" << threads << " lanes)...\n";
  const auto threaded = RunTraining(exp, flags, threads);

  BA_CHECK_EQ(serial.size(), threaded.size());
  bool loss_match = true;
  for (size_t e = 0; e < serial.size(); ++e) {
    if (serial[e].train_loss != threaded[e].train_loss) {
      loss_match = false;
      std::cout << "[train] LOSS MISMATCH epoch " << (e + 1) << ": serial "
                << serial[e].train_loss << " threaded "
                << threaded[e].train_loss << "\n";
    }
  }

  const double serial_epoch_s = MeanEpochSeconds(serial);
  const double threaded_epoch_s = MeanEpochSeconds(threaded);
  const double speedup =
      threaded_epoch_s > 0.0 ? serial_epoch_s / threaded_epoch_s : 0.0;
  std::cout << "[train] serial " << ba::TablePrinter::Num(serial_epoch_s, 3)
            << " s/epoch, threaded "
            << ba::TablePrinter::Num(threaded_epoch_s, 3) << " s/epoch ("
            << ba::TablePrinter::Num(speedup, 2) << "x), per-epoch losses "
            << (loss_match ? "identical" : "DIVERGED") << "\n";

  const std::string out_path = flags.GetString("out", "BENCH_train.json");
  std::ofstream out(out_path, std::ios::trunc);
  out << "{\"serial_epoch_seconds\":" << serial_epoch_s
      << ",\"threaded_epoch_seconds\":" << threaded_epoch_s
      << ",\"speedup\":" << speedup
      << ",\"loss_match\":" << (loss_match ? "true" : "false")
      << ",\"final_loss_serial\":" << serial.back().train_loss
      << ",\"final_loss_threaded\":" << threaded.back().train_loss
      << ",\"epochs\":" << serial.size()
      << ",\"train_examples\":" << exp.train.size()
      << ",\"lanes\":" << threads
      << ",\"meta\":" << ba::bench::BenchMetaJson(flags, "train_throughput") << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return loss_match ? 0 : 1;
}
