// Reproduces Table IV: BAClassifier vs existing bitcoin address
// classifiers, pooled over `--trials` independent economies.
//
// Comparators:
//  - BitScope [84]: multi-resolution clustering over hand features.
//  - Lee et al. [20] + Random Forest: 80 hand-crafted tx-history
//    summary features, random forest.
//  - Lee et al. [20] + ANN: same features, plain MLP.
//
// Comparator fidelity: BitScope and the ANN are run the way the
// original pipelines ran — on raw (unstandardized) features, which is
// what their published scores reflect. Random Forest is scale-invariant
// and therefore represents the comparators' best case.
//
// Paper's shape: BAClassifier tops every class (weighted F1 0.9497);
// Lee+RF is the strongest comparator; BitScope and the ANN trail.

#include <iostream>

#include "bench/bench_common.h"
#include "core/classifier.h"
#include "ml/bitscope.h"
#include "ml/lee_features.h"
#include "ml/mlp_classifier.h"
#include "ml/random_forest.h"

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int trials = static_cast<int>(flags.GetInt("trials", 3));

  ba::metrics::ConfusionMatrix cm_ba(ba::datagen::kNumBehaviors);
  ba::metrics::ConfusionMatrix cm_bitscope(ba::datagen::kNumBehaviors);
  ba::metrics::ConfusionMatrix cm_rf(ba::datagen::kNumBehaviors);
  ba::metrics::ConfusionMatrix cm_ann(ba::datagen::kNumBehaviors);

  for (int trial = 0; trial < trials; ++trial) {
    std::cout << "--- trial " << trial + 1 << "/" << trials << " ---\n";
    auto exp = ba::bench::BuildExperiment(flags, /*verbose=*/trial == 0,
                                          /*seed_offset=*/100u * trial);

    // ---- BAClassifier (full pipeline). ------------------------------
    ba::core::BaClassifier::Options opts;
    opts.dataset = ba::bench::DatasetOptionsFromFlags(flags);
    opts.graph_model.epochs =
        static_cast<int>(flags.GetInt("gfn_epochs", 30));
    opts.graph_model.seed = seed + static_cast<uint64_t>(trial);
    opts.aggregator.epochs =
        static_cast<int>(flags.GetInt("clf_epochs", 120));
    opts.aggregator.seed = seed + static_cast<uint64_t>(trial) + 1;
    ba::core::BaClassifier clf(opts);
    ba::Stopwatch watch;
    watch.Start();
    BA_CHECK_OK(clf.TrainOnSamples(exp.train));
    watch.Stop();
    ba::metrics::ConfusionMatrix cm(opts.graph_model.num_classes);
    BA_CHECK_OK(clf.EvaluateSamples(exp.test, &cm));
    cm_ba.Merge(cm);
    std::cout << "[train] BAClassifier: "
              << ba::TablePrinter::Num(watch.ElapsedSeconds(), 1)
              << "s, weighted F1 "
              << ba::TablePrinter::Num(cm.WeightedAverage().f1) << "\n";

    // ---- Comparators on Lee et al. 80-feature summaries. -------------
    const auto& ledger = exp.simulator->ledger();
    ba::ml::MlDataset lee_train, lee_test;
    lee_train.num_classes = ba::datagen::kNumBehaviors;
    lee_test.num_classes = ba::datagen::kNumBehaviors;
    for (const auto& s : exp.train) {
      lee_train.x.push_back(ba::ml::LeeFeatures(ledger, s.address));
      lee_train.y.push_back(s.label);
    }
    for (const auto& s : exp.test) {
      lee_test.x.push_back(ba::ml::LeeFeatures(ledger, s.address));
      lee_test.y.push_back(s.label);
    }

    {
      ba::ml::BitScope bitscope;
      bitscope.Fit(lee_train);
      cm_bitscope.Merge(bitscope.Evaluate(lee_test));
    }
    {
      ba::ml::RandomForest::Options o;
      o.num_trees = 50;
      o.seed = seed + static_cast<uint64_t>(trial);
      ba::ml::RandomForest rf(o);
      rf.Fit(lee_train);
      cm_rf.Merge(rf.Evaluate(lee_test));
    }
    {
      ba::ml::MlpClassifier::Options o;
      o.hidden = {16};
      o.epochs = 15;
      o.learning_rate = 5e-3f;
      o.seed = seed + static_cast<uint64_t>(trial);
      o.name = "Lee et al. [20] ANN";
      ba::ml::MlpClassifier ann(o);
      ann.Fit(lee_train);
      cm_ann.Merge(ann.Evaluate(lee_test));
    }
  }

  ba::TablePrinter table(
      {"Classifiers", "Type", "Precision", "Recall", "F1-score"});
  ba::bench::AddPerClassRows(&table, "BAClassifier", cm_ba);
  ba::bench::AddPerClassRows(&table, "BitScope [84]", cm_bitscope);
  ba::bench::AddPerClassRows(&table, "Lee et al. [20] Random Forest", cm_rf);
  ba::bench::AddPerClassRows(&table, "Lee et al. [20] ANN", cm_ann);
  table.Print(std::cout,
              "Table IV — BAClassifier vs prior classifiers, pooled over " +
                  std::to_string(trials) +
                  " economies (paper: BAClassifier 0.9497 >> Lee+RF ~0.80 "
                  "> BitScope ~0.77 > Lee+ANN ~0.54)");
  return 0;
}
