// Future-work experiment #1 (paper §V): entity identification.
//
// "The dataset only contains the type of address while lacking the
//  entity information (we are curious to know which exchange the
//  address belongs to — Coinbase, Binance, or another)."
//
// For every behavior class with >= 2 entities, this harness trains the
// same two-stage pipeline to identify WHICH entity owns the address — a
// within-class task the paper leaves open. Expected: well above chance
// where entities leave operational fingerprints (gambling houses with
// distinct payout batching, pools with distinct payout cadence), close
// to chance where the machinery is deliberately identical (exchange
// deposit addresses) — quantifying how much entity signal survives the
// behavior-level representation.

#include <algorithm>
#include <iostream>
#include <map>
#include <unordered_map>

#include "bench/bench_common.h"
#include "core/aggregator.h"
#include "core/classifier.h"
#include "core/graph_model.h"

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const auto config = ba::bench::ScenarioFromFlags(flags);
  ba::datagen::Simulator simulator(config);
  BA_CHECK_OK(simulator.Run());
  const auto entity_labels = simulator.CollectEntityLabels(/*min_txs=*/2);

  ba::TablePrinter table({"Class", "Entities", "Addresses", "Chance",
                          "Entity accuracy", "Weighted F1"});

  for (int behavior = 0; behavior < ba::datagen::kNumBehaviors; ++behavior) {
    // Collect this class's addresses and re-map entity ids densely.
    std::unordered_map<ba::chain::AddressId, int> entity_of;
    std::map<int, int> dense;  // original entity id -> dense id
    std::vector<ba::datagen::LabeledAddress> addresses;
    for (const auto& e : entity_labels) {
      if (static_cast<int>(e.behavior) != behavior) continue;
      auto [it, inserted] =
          dense.emplace(e.entity_id, static_cast<int>(dense.size()));
      entity_of[e.address] = it->second;
      addresses.push_back(
          {e.address, static_cast<ba::datagen::BehaviorLabel>(behavior)});
    }
    const int num_entities = static_cast<int>(dense.size());
    if (num_entities < 2 || addresses.size() < 40) continue;

    // Entity-stratified split: temporarily encode the entity in the
    // split by shuffling plain, then splitting per entity.
    ba::Rng rng(seed + static_cast<uint64_t>(behavior));
    rng.Shuffle(&addresses);
    std::vector<ba::datagen::LabeledAddress> train_a, test_a;
    std::map<int, int> counts;
    for (const auto& a : addresses) {
      const int e = entity_of.at(a.address);
      if (counts[e]++ % 5 == 4) {
        test_a.push_back(a);
      } else {
        train_a.push_back(a);
      }
    }

    ba::core::GraphDatasetBuilder builder(
        ba::bench::DatasetOptionsFromFlags(flags));
    auto train = builder.Build(simulator.ledger(), train_a);
    auto test = builder.Build(simulator.ledger(), test_a);
    for (auto* set : {&train, &test}) {
      for (auto& s : *set) s.label = entity_of.at(s.address);
    }
    if (train.empty() || test.empty()) continue;

    ba::core::GraphModelOptions gopts;
    gopts.num_classes = num_entities;
    gopts.epochs = static_cast<int>(flags.GetInt("gfn_epochs", 30));
    gopts.k_hops = static_cast<int>(flags.GetInt("khops", 2));
    gopts.seed = seed;
    ba::core::GraphModel gfn(gopts);
    gfn.Train(train);

    auto train_seq = ba::core::BuildEmbeddingSequences(gfn, train);
    auto test_seq = ba::core::BuildEmbeddingSequences(gfn, test);
    const auto scaler = ba::core::EmbeddingScaler::Fit(train_seq);
    scaler.Apply(&train_seq);
    scaler.Apply(&test_seq);

    ba::core::AggregatorOptions aopts;
    aopts.embed_dim = gfn.embed_dim();
    aopts.num_classes = num_entities;
    aopts.epochs = static_cast<int>(flags.GetInt("clf_epochs", 120));
    aopts.seed = seed + 1;
    ba::core::AggregatorModel agg(aopts);
    agg.Train(train_seq);
    const auto cm = agg.Evaluate(test_seq);

    table.AddRow(
        {ba::datagen::BehaviorName(
             static_cast<ba::datagen::BehaviorLabel>(behavior)),
         std::to_string(num_entities), std::to_string(addresses.size()),
         ba::TablePrinter::Num(1.0 / num_entities, 3),
         ba::TablePrinter::Num(cm.Accuracy()),
         ba::TablePrinter::Num(cm.WeightedAverage().f1)});
    std::cout << "[done] " << ba::datagen::BehaviorName(
                                  static_cast<ba::datagen::BehaviorLabel>(
                                      behavior))
              << ": accuracy " << ba::TablePrinter::Num(cm.Accuracy())
              << " vs chance " << ba::TablePrinter::Num(1.0 / num_entities, 3)
              << "\n";
  }
  table.Print(std::cout,
              "Future-work: WHICH entity owns the address (within-class "
              "identification; paper §V asks for exactly this)");
  return 0;
}
