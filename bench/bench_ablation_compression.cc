// Ablation A2: the compression stages and the similarity threshold Ψ
// (Eq. 5-6). Reports graph size reduction, construction cost and
// end-to-end F1 with compression disabled entirely and across Ψ values
// — quantifying the graph-node-compression contribution (§III-A.2).

#include <iostream>

#include "bench/bench_common.h"
#include "core/classifier.h"

namespace {

struct Variant {
  std::string name;
  bool single;
  bool multi;
  double psi;
};

}  // namespace

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  const auto config = ba::bench::ScenarioFromFlags(flags);
  ba::datagen::Simulator simulator(config);
  BA_CHECK_OK(simulator.Run());
  auto labeled = simulator.CollectLabeledAddresses(/*min_txs=*/3);
  ba::Rng rng(config.seed ^ 0xBEEF);
  labeled = ba::datagen::StratifiedSample(
      labeled, flags.GetInt("addresses", 400), &rng);
  const auto split = ba::datagen::StratifiedSplit(labeled, 0.8, &rng);

  std::vector<Variant> variants = {
      {"no compression", false, false, 0.5},
      {"single only", true, false, 0.5},
      {"single+multi Psi=0.3", true, true, 0.3},
      {"single+multi Psi=0.5 (paper)", true, true, 0.5},
      {"single+multi Psi=0.7", true, true, 0.7},
      {"single+multi Psi=0.9", true, true, 0.9},
      {"Psi=0.5, sparse-S backend", true, true, 0.5},
  };

  ba::TablePrinter table({"Variant", "Avg nodes/graph", "Compression",
                          "Construction s", "Weighted F1"});
  double baseline_nodes = 0.0;
  for (const auto& v : variants) {
    ba::core::GraphDatasetOptions dopts;
    dopts.construction.enable_single_compression = v.single;
    dopts.construction.enable_multi_compression = v.multi;
    dopts.construction.similarity_threshold = v.psi;
    dopts.construction.use_sparse_similarity =
        v.name.find("sparse") != std::string::npos;
    ba::core::GraphDatasetBuilder builder(dopts);
    const auto train = builder.Build(simulator.ledger(), split.train);
    const auto test = builder.Build(simulator.ledger(), split.test);

    int64_t graphs = 0, nodes = 0;
    for (const auto& s : train) {
      graphs += s.num_graphs();
      for (const auto& g : s.graphs) nodes += g.num_nodes();
    }
    const double avg_nodes =
        static_cast<double>(nodes) / static_cast<double>(std::max<int64_t>(1, graphs));
    if (baseline_nodes == 0.0) baseline_nodes = avg_nodes;

    ba::core::BaClassifier::Options opts;
    opts.dataset = dopts;
    opts.graph_model.epochs = static_cast<int>(flags.GetInt("gfn_epochs", 25));
    opts.aggregator.epochs = static_cast<int>(flags.GetInt("clf_epochs", 80));
    opts.graph_model.seed = config.seed;
    ba::core::BaClassifier clf(opts);
    BA_CHECK_OK(clf.TrainOnSamples(train));
    ba::metrics::ConfusionMatrix cm(opts.graph_model.num_classes);
    BA_CHECK_OK(clf.EvaluateSamples(test, &cm));

    table.AddRow({v.name, ba::TablePrinter::Num(avg_nodes, 1),
                  ba::TablePrinter::Num(avg_nodes / baseline_nodes * 100.0, 1) +
                      "% of raw",
                  ba::TablePrinter::Num(builder.timings().TotalSeconds(), 2),
                  ba::TablePrinter::Num(cm.WeightedAverage().f1)});
    std::cout << "[done] " << v.name << "\n";
  }
  table.Print(std::cout,
              "Ablation A2 — graph node compression and similarity "
              "threshold Ψ (expected: large node reduction at equal or "
              "better F1; very high Ψ under-compresses)");
  return 0;
}
