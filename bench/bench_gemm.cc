// GEMM kernel bench: parity + throughput of the blocked/vectorized
// kernels (tensor/gemm.cc) against the pre-PR naive reference loops,
// for all three layouts (normal, Aᵀ·B, A·Bᵀ), plus the int8 inference
// kernel family (tensor/quant.h). Writes BENCH_gemm.json.
//
//   ./build/bench/bench_gemm [--threads 1] [--reps-ms 150]
//       [--out BENCH_gemm.json] [--trace-out trace.json]
//
// Run with --threads 1 for the single-thread kernel comparison (the
// acceptance gate), and --threads N to exercise the row-panel split.
// Exits non-zero on any parity mismatch (fp32 tolerance, int8
// fp32-tolerance, or int8 dispatch-vs-scalar bit parity).

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "tensor/gemm.h"
#include "tensor/quant.h"
#include "tensor/tensor.h"

namespace {

using ba::Rng;
using ba::tensor::Tensor;

using MatMulFn = Tensor (*)(const Tensor&, const Tensor&);

struct Layout {
  const char* name;
  MatMulFn optimized;
  MatMulFn reference;
  /// Shapes of (a, b) for an m×k×n problem under this layout.
  std::vector<int64_t> (*a_shape)(int64_t m, int64_t k);
  std::vector<int64_t> (*b_shape)(int64_t k, int64_t n);
};

const Layout kLayouts[] = {
    {"ab", ba::tensor::MatMulValue, ba::tensor::MatMulReferenceValue,
     [](int64_t m, int64_t k) { return std::vector<int64_t>{m, k}; },
     [](int64_t k, int64_t n) { return std::vector<int64_t>{k, n}; }},
    {"atb", ba::tensor::MatMulTransposeAValue,
     ba::tensor::MatMulReferenceTransposeAValue,
     [](int64_t m, int64_t k) { return std::vector<int64_t>{k, m}; },
     [](int64_t k, int64_t n) { return std::vector<int64_t>{k, n}; }},
    {"abt", ba::tensor::MatMulTransposeBValue,
     ba::tensor::MatMulReferenceTransposeBValue,
     [](int64_t m, int64_t k) { return std::vector<int64_t>{m, k}; },
     [](int64_t k, int64_t n) { return std::vector<int64_t>{n, k}; }},
};

/// Worst mismatch between two same-shaped results, carrying enough to
/// diagnose a kernel regression from the CI log alone: the offending
/// (i, j) index and the absolute difference there, alongside the
/// relative metric the gate thresholds.
struct ParityError {
  double rel_err = 0.0;
  double abs_err = 0.0;
  int64_t i = -1;
  int64_t j = -1;
};

/// Largest relative mismatch between optimized and reference results.
/// The kernels contract mul+add into FMA, so a small tolerance (not
/// bit-equality) is the correct parity notion. The denominator floors
/// at sqrt(k) — the natural magnitude of a k-term dot product of O(1)
/// inputs — so cancellation-near-zero outputs don't blow up a purely
/// relative metric.
ParityError MaxError(const Tensor& got, const Tensor& want, int64_t k) {
  BA_CHECK(got.SameShape(want));
  const double floor_mag =
      std::sqrt(static_cast<double>(std::max<int64_t>(k, 1)));
  const int64_t cols = got.rank() == 2 ? got.dim(1) : 1;
  ParityError worst;
  for (int64_t e = 0; e < got.numel(); ++e) {
    const double g = got.data()[e], w = want.data()[e];
    const double denom = std::max({std::abs(g), std::abs(w), floor_mag});
    const double rel = std::abs(g - w) / denom;
    if (rel > worst.rel_err) {
      worst.rel_err = rel;
      worst.abs_err = std::abs(g - w);
      worst.i = e / cols;
      worst.j = e % cols;
    }
  }
  return worst;
}

void PrintParityFailure(const char* family, const char* layout, int64_t m,
                        int64_t k, int64_t n, const ParityError& err,
                        double tol) {
  std::cout << "[parity] FAIL " << family << " layout=" << layout << " size="
            << m << "x" << k << "x" << n << " at (i=" << err.i
            << ",j=" << err.j << ") max_abs_diff=" << err.abs_err
            << " rel_err=" << err.rel_err << " tol=" << tol << "\n";
}

/// Times an arbitrary kernel invocation and reports GFLOP/s (or int8
/// GOP/s — same 2·m·k·n operation count). Takes the best of
/// `attempts` measured windows: this host is a shared VM whose
/// effective clock wanders run to run, and the gates compare ratios of
/// measurements taken at different times, so "best sustained rate"
/// is the stable notion of kernel capability.
double TimeGflops(const std::function<void()>& fn, double flops_per_call,
                  double target_ms, int attempts = 3) {
  // Warm up (page faults, ifunc resolution), then calibrate rep count
  // so each measured window is ~target_ms.
  fn();
  ba::Stopwatch watch;
  watch.Start();
  fn();
  watch.Stop();
  const double once = std::max(watch.ElapsedSeconds(), 1e-7);
  const int reps = std::max(1, static_cast<int>(target_ms / 1000.0 / once));
  double best = 0.0;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    watch.Reset();
    watch.Start();
    for (int r = 0; r < reps; ++r) fn();
    watch.Stop();
    best = std::max(best,
                    flops_per_call * reps / watch.ElapsedSeconds() / 1e9);
  }
  return best;
}

/// Documented int8-vs-fp32 tolerance (DESIGN.md §7 "Quantized
/// inference"): each of the k products carries quantization error of
/// at most e1 = (s_a·|w|_max + s_w·|x|_max)/2 + s_a·s_w/4; the errors
/// are independent half-grid roundings, so the max over the m·n output
/// sums concentrates near √k·e1 with a sub-Gaussian tail. The factor 4
/// covers the tail at bench sizes (observed maxima sit near 2·√k·e1);
/// a kernel bug lands orders of magnitude above it.
double Int8Tolerance(int64_t k, float a_scale, float w_scale_max,
                     float x_absmax, float w_absmax) {
  const double e1 = 0.5 * (static_cast<double>(a_scale) * w_absmax +
                           static_cast<double>(w_scale_max) * x_absmax) +
                    0.25 * static_cast<double>(a_scale) * w_scale_max;
  return 4.0 * std::sqrt(static_cast<double>(std::max<int64_t>(k, 1))) * e1 +
         1e-6;
}

}  // namespace

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  ba::bench::MaybeEnableTracing(flags);
  ba::bench::MaybeSetSharedPoolThreads(flags);
  const double target_ms = flags.GetDouble("reps-ms", 150.0);
  Rng rng(17);

  // Parity sweep: tile-aligned, ragged, degenerate and empty shapes,
  // plus rectangular / tall-skinny cases that force the row-fringe
  // (m % MR), column-fringe (n % NR) and k-chunk remainder paths for
  // every layout.
  const std::vector<std::vector<int64_t>> parity_shapes = {
      {1, 1, 1},    {1, 7, 1},     {7, 1, 5},     {1, 16, 16},  {4, 16, 16},
      {5, 7, 9},    {17, 33, 65},  {12, 8, 16},   {64, 64, 64}, {3, 128, 2},
      {0, 4, 4},    {4, 0, 4},     {4, 4, 0},     {1, 512, 512},
      {7, 130, 33}, {512, 64, 512}, {33, 300, 17}, {2, 511, 129},
  };
  constexpr double kTol = 1e-4;
  bool parity_ok = true;
  for (const auto& layout : kLayouts) {
    for (const auto& shape : parity_shapes) {
      const int64_t m = shape[0], k = shape[1], n = shape[2];
      const Tensor a = Tensor::RandomUniform(layout.a_shape(m, k), &rng);
      const Tensor b = Tensor::RandomUniform(layout.b_shape(k, n), &rng);
      const ParityError err =
          MaxError(layout.optimized(a, b), layout.reference(a, b), k);
      if (err.rel_err > kTol) {
        parity_ok = false;
        PrintParityFailure("fp32", layout.name, m, k, n, err, kTol);
      }
    }
  }
  std::cout << "[parity] fp32 " << (parity_ok ? "OK" : "FAILED") << " over "
            << parity_shapes.size() << " shapes x " << 3 << " layouts\n";

  // Int8 parity: the quantize→pack→int8-GEMM→dequant pipeline against
  // the fp32 product (documented statistical tolerance), and the
  // dispatched variant against the forced-scalar reference
  // (bit-exact — the integer core is exact in every variant).
  bool int8_parity_ok = true;
  for (const auto& shape : parity_shapes) {
    const int64_t m = shape[0], k = shape[1], n = shape[2];
    const Tensor x = Tensor::RandomUniform({m, k}, &rng);
    const Tensor w = Tensor::RandomUniform({k, n}, &rng);
    const Tensor bias = Tensor::RandomUniform({n}, &rng);
    const ba::tensor::QuantizedWeights qw =
        ba::tensor::QuantizeWeights(w, &bias);
    ba::tensor::ActivationObserver obs;
    obs.Observe(x);
    const float a_scale = obs.scale();

    Tensor want = ba::tensor::MatMulReferenceValue(x, w);
    for (int64_t i = 0; i < m; ++i)
      for (int64_t j = 0; j < n; ++j) want.at(i, j) += bias[j];
    const Tensor got = ba::tensor::Int8LinearValue(x, qw, a_scale);

    float w_scale_max = 0.0f;
    for (float s : qw.scales) w_scale_max = std::max(w_scale_max, s);
    const double tol =
        Int8Tolerance(k, a_scale, w_scale_max, x.AbsMax(), w.AbsMax());
    const ParityError err = MaxError(got, want, k);
    if (err.abs_err > tol) {
      int8_parity_ok = false;
      PrintParityFailure("int8-vs-fp32", "ab", m, k, n, err, tol);
    }

    // Bit parity: dispatched kernel vs forced-scalar reference.
    std::vector<uint8_t> qx;
    ba::tensor::QuantizeActivations(x, a_scale, &qx);
    Tensor scalar_ref({m, n});
    ba::tensor::internal::Int8GemmReference(
        qx.data(), qw.packed.data(), qw.colsums.data(), qw.scales.data(),
        qw.bias.data(), a_scale, scalar_ref.data(), m, qw.packed_k, n);
    if (std::memcmp(got.data(), scalar_ref.data(),
                    static_cast<size_t>(got.numel()) * sizeof(float)) != 0) {
      int8_parity_ok = false;
      const ParityError bit_err = MaxError(got, scalar_ref, k);
      PrintParityFailure("int8-bit-vs-scalar", "ab", m, k, n, bit_err, 0.0);
    }
  }
  std::cout << "[parity] int8 " << (int8_parity_ok ? "OK" : "FAILED")
            << " over " << parity_shapes.size() << " shapes (variant "
            << ba::tensor::internal::Int8GemmVariantName() << ")\n";

  // Throughput sweep.
  struct Row {
    std::string layout;
    int64_t size;
    double ref_gflops;
    double opt_gflops;
    double speedup;
  };
  std::vector<Row> rows;
  const std::vector<int64_t> sizes = {64, 128, 256, 512};
  double speedup_256 = 0.0;
  double fp32_opt_256 = 0.0;
  for (const auto& layout : kLayouts) {
    for (int64_t s : sizes) {
      const Tensor a = Tensor::RandomUniform(layout.a_shape(s, s), &rng);
      const Tensor b = Tensor::RandomUniform(layout.b_shape(s, s), &rng);
      const double flops = 2.0 * static_cast<double>(s) * s * s;
      Row row;
      row.layout = layout.name;
      row.size = s;
      row.ref_gflops = TimeGflops([&] { layout.reference(a, b); }, flops,
                                  target_ms);
      row.opt_gflops = TimeGflops([&] { layout.optimized(a, b); }, flops,
                                  target_ms);
      row.speedup = row.opt_gflops / row.ref_gflops;
      if (layout.optimized == ba::tensor::MatMulValue && s == 256) {
        speedup_256 = row.speedup;
        fp32_opt_256 = row.opt_gflops;
      }
      std::cout << "[gemm] " << row.layout << " " << s << "^3  ref "
                << ba::TablePrinter::Num(row.ref_gflops, 2) << " GFLOP/s  opt "
                << ba::TablePrinter::Num(row.opt_gflops, 2) << " GFLOP/s  ("
                << ba::TablePrinter::Num(row.speedup, 2) << "x)\n";
      rows.push_back(row);
    }
  }

  // Int8 throughput: quantize-activations + packed GEMM per call (the
  // real per-inference cost — weights pack once at deploy).
  struct Int8Row {
    int64_t size;
    double gops;
  };
  std::vector<Int8Row> int8_rows;
  double int8_gops_256 = 0.0;
  for (int64_t s : sizes) {
    const Tensor x = Tensor::RandomUniform({s, s}, &rng);
    const Tensor w = Tensor::RandomUniform({s, s}, &rng);
    const Tensor bias = Tensor::RandomUniform({s}, &rng);
    const ba::tensor::QuantizedWeights qw =
        ba::tensor::QuantizeWeights(w, &bias);
    ba::tensor::ActivationObserver obs;
    obs.Observe(x);
    const float a_scale = obs.scale();
    const double ops = 2.0 * static_cast<double>(s) * s * s;
    const double gops = TimeGflops(
        [&] { ba::tensor::Int8LinearValue(x, qw, a_scale); }, ops, target_ms);
    if (s == 256) int8_gops_256 = gops;
    std::cout << "[gemm] int8 " << s << "^3  " << ba::TablePrinter::Num(gops, 2)
              << " GOP/s\n";
    int8_rows.push_back({s, gops});
  }
  const double int8_speedup_256 =
      fp32_opt_256 > 0.0 ? int8_gops_256 / fp32_opt_256 : 0.0;
  std::cout << "[gemm] int8 256^3 vs fp32 ab opt: "
            << ba::TablePrinter::Num(int8_speedup_256, 2) << "x\n";

  const std::string out_path = flags.GetString("out", "BENCH_gemm.json");
  std::ofstream out(out_path, std::ios::trunc);
  out << "{\"parity_ok\":" << (parity_ok ? "true" : "false")
      << ",\"int8_parity_ok\":" << (int8_parity_ok ? "true" : "false")
      << ",\"speedup_256\":" << speedup_256
      << ",\"int8_speedup_256\":" << int8_speedup_256 << ",\"results\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i) out << ",";
    out << "{\"layout\":\"" << rows[i].layout << "\",\"size\":" << rows[i].size
        << ",\"ref_gflops\":" << rows[i].ref_gflops
        << ",\"opt_gflops\":" << rows[i].opt_gflops
        << ",\"speedup\":" << rows[i].speedup << "}";
  }
  out << "],\"int8_results\":[";
  for (size_t i = 0; i < int8_rows.size(); ++i) {
    if (i) out << ",";
    out << "{\"size\":" << int8_rows[i].size
        << ",\"gops\":" << int8_rows[i].gops << "}";
  }
  out << "],\"meta\":" << ba::bench::BenchMetaJson(flags, "gemm") << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return (parity_ok && int8_parity_ok) ? 0 : 1;
}
