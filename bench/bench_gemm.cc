// GEMM kernel bench: parity + throughput of the blocked/vectorized
// kernels (tensor/gemm.cc) against the pre-PR naive reference loops,
// for all three layouts (normal, Aᵀ·B, A·Bᵀ). Writes BENCH_gemm.json.
//
//   ./build/bench/bench_gemm [--threads 1] [--reps-ms 150]
//       [--out BENCH_gemm.json] [--trace-out trace.json]
//
// Run with --threads 1 for the single-thread kernel comparison (the
// acceptance gate), and --threads N to exercise the row-panel split.
// Exits non-zero on any parity mismatch.

#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace {

using ba::Rng;
using ba::tensor::Tensor;

using MatMulFn = Tensor (*)(const Tensor&, const Tensor&);

struct Layout {
  const char* name;
  MatMulFn optimized;
  MatMulFn reference;
  /// Shapes of (a, b) for an m×k×n problem under this layout.
  std::vector<int64_t> (*a_shape)(int64_t m, int64_t k);
  std::vector<int64_t> (*b_shape)(int64_t k, int64_t n);
};

const Layout kLayouts[] = {
    {"ab", ba::tensor::MatMulValue, ba::tensor::MatMulReferenceValue,
     [](int64_t m, int64_t k) { return std::vector<int64_t>{m, k}; },
     [](int64_t k, int64_t n) { return std::vector<int64_t>{k, n}; }},
    {"atb", ba::tensor::MatMulTransposeAValue,
     ba::tensor::MatMulReferenceTransposeAValue,
     [](int64_t m, int64_t k) { return std::vector<int64_t>{k, m}; },
     [](int64_t k, int64_t n) { return std::vector<int64_t>{k, n}; }},
    {"abt", ba::tensor::MatMulTransposeBValue,
     ba::tensor::MatMulReferenceTransposeBValue,
     [](int64_t m, int64_t k) { return std::vector<int64_t>{m, k}; },
     [](int64_t k, int64_t n) { return std::vector<int64_t>{n, k}; }},
};

/// Largest relative mismatch between optimized and reference results.
/// The kernels contract mul+add into FMA, so a small tolerance (not
/// bit-equality) is the correct parity notion. The denominator floors
/// at sqrt(k) — the natural magnitude of a k-term dot product of O(1)
/// inputs — so cancellation-near-zero outputs don't blow up a purely
/// relative metric.
double MaxRelError(const Tensor& got, const Tensor& want, int64_t k) {
  BA_CHECK(got.SameShape(want));
  const double floor_mag = std::sqrt(static_cast<double>(std::max<int64_t>(k, 1)));
  double worst = 0.0;
  for (int64_t i = 0; i < got.numel(); ++i) {
    const double g = got.data()[i], w = want.data()[i];
    const double denom = std::max({std::abs(g), std::abs(w), floor_mag});
    worst = std::max(worst, std::abs(g - w) / denom);
  }
  return worst;
}

double TimeGflops(MatMulFn fn, const Tensor& a, const Tensor& b, int64_t m,
                  int64_t k, int64_t n, double target_ms) {
  // Warm up (page faults, ifunc resolution), then calibrate rep count
  // so the measured window is ~target_ms.
  fn(a, b);
  ba::Stopwatch watch;
  watch.Start();
  fn(a, b);
  watch.Stop();
  const double once = std::max(watch.ElapsedSeconds(), 1e-7);
  const int reps =
      std::max(1, static_cast<int>(target_ms / 1000.0 / once));
  watch.Reset();
  watch.Start();
  for (int r = 0; r < reps; ++r) fn(a, b);
  watch.Stop();
  const double flops = 2.0 * static_cast<double>(m) * k * n * reps;
  return flops / watch.ElapsedSeconds() / 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  ba::bench::MaybeEnableTracing(flags);
  ba::bench::MaybeSetSharedPoolThreads(flags);
  const double target_ms = flags.GetDouble("reps-ms", 150.0);
  Rng rng(17);

  // Parity sweep: tile-aligned, ragged, degenerate and empty shapes.
  const std::vector<std::vector<int64_t>> parity_shapes = {
      {1, 1, 1},   {1, 7, 1},    {7, 1, 5},   {1, 16, 16}, {4, 16, 16},
      {5, 7, 9},   {17, 33, 65}, {12, 8, 16}, {64, 64, 64}, {3, 128, 2},
      {0, 4, 4},   {4, 0, 4},    {4, 4, 0},
  };
  constexpr double kTol = 1e-4;
  bool parity_ok = true;
  for (const auto& layout : kLayouts) {
    for (const auto& shape : parity_shapes) {
      const int64_t m = shape[0], k = shape[1], n = shape[2];
      const Tensor a = Tensor::RandomUniform(layout.a_shape(m, k), &rng);
      const Tensor b = Tensor::RandomUniform(layout.b_shape(k, n), &rng);
      const double err =
          MaxRelError(layout.optimized(a, b), layout.reference(a, b), k);
      if (err > kTol) {
        parity_ok = false;
        std::cout << "[parity] FAIL " << layout.name << " " << m << "x" << k
                  << "x" << n << " rel_err " << err << "\n";
      }
    }
  }
  std::cout << "[parity] " << (parity_ok ? "OK" : "FAILED") << " over "
            << parity_shapes.size() << " shapes x " << 3 << " layouts\n";

  // Throughput sweep.
  struct Row {
    std::string layout;
    int64_t size;
    double ref_gflops;
    double opt_gflops;
    double speedup;
  };
  std::vector<Row> rows;
  const std::vector<int64_t> sizes = {64, 128, 256, 512};
  double speedup_256 = 0.0;
  for (const auto& layout : kLayouts) {
    for (int64_t s : sizes) {
      const Tensor a = Tensor::RandomUniform(layout.a_shape(s, s), &rng);
      const Tensor b = Tensor::RandomUniform(layout.b_shape(s, s), &rng);
      Row row;
      row.layout = layout.name;
      row.size = s;
      row.ref_gflops =
          TimeGflops(layout.reference, a, b, s, s, s, target_ms);
      row.opt_gflops =
          TimeGflops(layout.optimized, a, b, s, s, s, target_ms);
      row.speedup = row.opt_gflops / row.ref_gflops;
      if (layout.optimized == ba::tensor::MatMulValue && s == 256) {
        speedup_256 = row.speedup;
      }
      std::cout << "[gemm] " << row.layout << " " << s << "^3  ref "
                << ba::TablePrinter::Num(row.ref_gflops, 2) << " GFLOP/s  opt "
                << ba::TablePrinter::Num(row.opt_gflops, 2) << " GFLOP/s  ("
                << ba::TablePrinter::Num(row.speedup, 2) << "x)\n";
      rows.push_back(row);
    }
  }

  const std::string out_path = flags.GetString("out", "BENCH_gemm.json");
  std::ofstream out(out_path, std::ios::trunc);
  out << "{\"parity_ok\":" << (parity_ok ? "true" : "false")
      << ",\"speedup_256\":" << speedup_256 << ",\"results\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i) out << ",";
    out << "{\"layout\":\"" << rows[i].layout << "\",\"size\":" << rows[i].size
        << ",\"ref_gflops\":" << rows[i].ref_gflops
        << ",\"opt_gflops\":" << rows[i].opt_gflops
        << ",\"speedup\":" << rows[i].speedup << "}";
  }
  out << "],\"meta\":" << ba::bench::BenchMetaJson(flags, "gemm") << "}\n";
  std::cout << "wrote " << out_path << "\n";
  return parity_ok ? 0 : 1;
}
