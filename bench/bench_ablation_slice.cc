// Ablation A1: transaction slice size (the paper fixes 100 tx/graph,
// §III-A.1). Sweeps the slice size and reports end-to-end weighted F1,
// graph counts and construction cost — quantifying the unified-graph
// design choice DESIGN.md calls out.

#include <iostream>

#include "bench/bench_common.h"
#include "core/classifier.h"

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  const auto config = ba::bench::ScenarioFromFlags(flags);
  ba::datagen::Simulator simulator(config);
  BA_CHECK_OK(simulator.Run());
  auto labeled = simulator.CollectLabeledAddresses(/*min_txs=*/3);
  ba::Rng rng(config.seed ^ 0xBEEF);
  labeled = ba::datagen::StratifiedSample(
      labeled, flags.GetInt("addresses", 500), &rng);
  const auto split = ba::datagen::StratifiedSplit(labeled, 0.8, &rng);

  ba::TablePrinter table({"Slice size", "Train graphs", "Avg nodes/graph",
                          "Construction s", "Weighted F1"});
  for (int slice : {25, 50, 100, 200}) {
    ba::core::GraphDatasetOptions dopts;
    dopts.construction.slice_size = slice;
    ba::core::GraphDatasetBuilder builder(dopts);
    const auto train = builder.Build(simulator.ledger(), split.train);
    const auto test = builder.Build(simulator.ledger(), split.test);

    int64_t graphs = 0, nodes = 0;
    for (const auto& s : train) {
      graphs += s.num_graphs();
      for (const auto& g : s.graphs) nodes += g.num_nodes();
    }

    ba::core::BaClassifier::Options opts;
    opts.dataset = dopts;
    opts.graph_model.epochs = static_cast<int>(flags.GetInt("gfn_epochs", 25));
    opts.aggregator.epochs = static_cast<int>(flags.GetInt("clf_epochs", 80));
    opts.graph_model.seed = config.seed;
    ba::core::BaClassifier clf(opts);
    BA_CHECK_OK(clf.TrainOnSamples(train));
    ba::metrics::ConfusionMatrix cm(opts.graph_model.num_classes);
    BA_CHECK_OK(clf.EvaluateSamples(test, &cm));

    table.AddRow({std::to_string(slice), std::to_string(graphs),
                  ba::TablePrinter::Num(
                      static_cast<double>(nodes) /
                          static_cast<double>(std::max<int64_t>(1, graphs)),
                      1),
                  ba::TablePrinter::Num(builder.timings().TotalSeconds(), 2),
                  ba::TablePrinter::Num(cm.WeightedAverage().f1)});
    std::cout << "[done] slice=" << slice << "\n";
  }
  table.Print(std::cout,
              "Ablation A1 — transaction slice size (paper fixes 100)");
  return 0;
}
