// Reproduces Fig 1: monthly active bitcoin addresses over time.
//
// The paper's figure shows roughly tenfold growth over a decade,
// motivating scalable address classification. This harness simulates a
// long chain with a growing adoption curve (new retail users join over
// time, activity rates climb) and prints the unique-active-address
// series per month bucket. The shape to reproduce is sustained growth
// from start to end.

#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  // A longer, staged simulation: activity scales up across eras.
  const int eras = static_cast<int>(flags.GetInt("eras", 6));
  const int blocks_per_era = static_cast<int>(flags.GetInt("blocks", 720));

  // One ledger reused across eras is not possible through the Simulator
  // API (one Run per economy), so emulate adoption growth by scaling
  // population with era index and concatenating per-era series.
  std::vector<ba::datagen::ActivityPoint> series;
  int64_t era_offset = 0;
  for (int era = 0; era < eras; ++era) {
    ba::datagen::ScenarioConfig config;
    config.seed = static_cast<uint64_t>(flags.GetInt("seed", 42)) + era;
    config.num_blocks = blocks_per_era;
    config.genesis_time =
        1'293'840'000 +
        static_cast<int64_t>(era) * blocks_per_era * 600;
    const double growth = 1.0 + 1.8 * era;  // adoption curve
    config.num_retail_users = static_cast<int>(60 * growth);
    config.miners_per_pool = static_cast<int>(30 * growth);
    config.gamblers_per_house = static_cast<int>(12 * growth);
    config.retail_payments_per_block = 2.0 * growth;
    config.exchange_deposits_per_block = 0.8 * growth;
    config.exchange_withdrawals_per_block = 0.6 * growth;
    config.bets_per_block = 1.5 * growth;
    config.mixes_per_block = 0.5 * growth;
    ba::datagen::Simulator simulator(config);
    BA_CHECK_OK(simulator.Run());
    // Five buckets per era, so the printed series has a stable cadence
    // regardless of the era length.
    const int64_t bucket_seconds =
        std::max<int64_t>(1, blocks_per_era * 600 / 5);
    auto era_series =
        ba::datagen::ActiveAddressSeries(simulator.ledger(), bucket_seconds);
    for (auto& p : era_series) series.push_back(p);
    era_offset += blocks_per_era;
  }

  int64_t max_active = 1;
  for (const auto& p : series) max_active = std::max(max_active, p.active_addresses);

  std::cout << "\nFig 1 — monthly active addresses (paper shape: ~10x "
               "growth across the observation window)\n\n";
  std::cout << "period,bucket_start_unix,active_addresses\n";
  for (size_t i = 0; i < series.size(); ++i) {
    std::cout << i << "," << series[i].bucket_start << ","
              << series[i].active_addresses << "\n";
  }

  std::cout << "\nASCII series (each * ~ " << (max_active / 60 + 1)
            << " addresses):\n";
  for (size_t i = 0; i < series.size(); ++i) {
    const int bars =
        static_cast<int>(series[i].active_addresses * 60 / max_active);
    std::cout << (i < 10 ? " " : "") << i << " |" << std::string(bars, '*')
              << " " << series[i].active_addresses << "\n";
  }

  // Compare era plateaus (first vs last full era) rather than the ramp
  // points at the very ends.
  double first = 0.0, last = 0.0;
  for (size_t i = 0; i < 5 && i < series.size(); ++i) {
    first = std::max(first, static_cast<double>(series[i].active_addresses));
  }
  for (size_t i = series.size() >= 5 ? series.size() - 5 : 0;
       i < series.size(); ++i) {
    last = std::max(last, static_cast<double>(series[i].active_addresses));
  }
  std::cout << "\ngrowth factor first->last month: "
            << ba::TablePrinter::Num(last / first, 2)
            << " (paper: ~10x over a decade)\n";
  return 0;
}
