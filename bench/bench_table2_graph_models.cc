// Reproduces Table II: graph-representation model comparison.
//
// GNNs (GFN — ours, GCN, DiffPool) are trained on individual address
// graph slices; classical ML models (LR, MLP, SVM, Bernoulli/Gaussian
// NB, KNN, Decision Tree, GBDT, XGBoost) receive the paper's flattened
// [agg-in | target | agg-out] features (§IV-C.1) for the same slices.
// Results are pooled over `--trials` independent economies (different
// seeds) to suppress run-to-run variance; reported: macro precision /
// recall and weighted F1 on the pooled test confusions.
//
// Paper's shape to reproduce: GFN tops the GNNs; boosted trees are the
// strongest classical family; naive Bayes and the linear models trail.

#include <iostream>
#include <memory>

#include "bench/bench_common.h"
#include "core/flat_features.h"
#include "core/graph_model.h"
#include "ml/boosting.h"
#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/linear_models.h"
#include "ml/mlp_classifier.h"
#include "ml/naive_bayes.h"
#include "ml/random_forest.h"

namespace {

struct Row {
  std::string group;
  std::string name;
  ba::metrics::ConfusionMatrix pooled{ba::datagen::kNumBehaviors};
};

}  // namespace

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  const int epochs = static_cast<int>(flags.GetInt("epochs", 30));
  const int trials = static_cast<int>(flags.GetInt("trials", 3));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::vector<Row> rows;
  auto row_for = [&rows](const std::string& group,
                         const std::string& name) -> Row& {
    for (auto& r : rows) {
      if (r.name == name) return r;
    }
    rows.push_back(
        Row{group, name,
            ba::metrics::ConfusionMatrix(ba::datagen::kNumBehaviors)});
    return rows.back();
  };

  for (int trial = 0; trial < trials; ++trial) {
    std::cout << "--- trial " << trial + 1 << "/" << trials << " ---\n";
    auto exp = ba::bench::BuildExperiment(flags, /*verbose=*/trial == 0,
                                          /*seed_offset=*/100u * trial);

    // ---- Graph neural models, evaluated per slice. GAT is an
    // extension beyond the paper's three. ------------------------------
    for (auto kind : {ba::core::GraphEncoderKind::kGfn,
                      ba::core::GraphEncoderKind::kDiffPool,
                      ba::core::GraphEncoderKind::kGcn,
                      ba::core::GraphEncoderKind::kGat}) {
      ba::core::GraphModelOptions opts;
      opts.encoder = kind;
      opts.epochs = epochs;
      opts.k_hops = static_cast<int>(flags.GetInt("khops", 2));
      opts.seed = seed + static_cast<uint64_t>(trial);
      ba::core::GraphModel model(opts);
      ba::Stopwatch watch;
      watch.Start();
      model.Train(exp.train);
      watch.Stop();
      const auto cm = model.EvaluateGraphLevel(exp.test);
      std::string name = ba::core::GraphEncoderName(kind);
      if (kind == ba::core::GraphEncoderKind::kGfn) name += " (ours)";
      if (kind == ba::core::GraphEncoderKind::kGat) name += " (extension)";
      row_for("GNNs", name).pooled.Merge(cm);
      std::cout << "[train] " << name << ": "
                << ba::TablePrinter::Num(watch.ElapsedSeconds(), 1)
                << "s, weighted F1 "
                << ba::TablePrinter::Num(cm.WeightedAverage().f1) << "\n";
    }

    // ---- Classical ML on per-slice flattened graph features. ---------
    ba::ml::MlDataset train_flat, test_flat;
    train_flat.num_classes = ba::datagen::kNumBehaviors;
    test_flat.num_classes = ba::datagen::kNumBehaviors;
    for (const auto& s : exp.train) {
      for (const auto& g : s.graphs) {
        train_flat.x.push_back(ba::core::FlatFeaturesForGraph(g));
        train_flat.y.push_back(s.label);
      }
    }
    for (const auto& s : exp.test) {
      for (const auto& g : s.graphs) {
        test_flat.x.push_back(ba::core::FlatFeaturesForGraph(g));
        test_flat.y.push_back(s.label);
      }
    }
    ba::ml::StandardScaler scaler;
    scaler.Fit(train_flat.x);
    scaler.Transform(&train_flat.x);
    scaler.Transform(&test_flat.x);

    std::vector<std::unique_ptr<ba::ml::MlModel>> models;
    models.push_back(std::make_unique<ba::ml::LogisticRegression>());
    {
      ba::ml::MlpClassifier::Options o;
      o.epochs = 60;
      o.seed = seed + static_cast<uint64_t>(trial);
      models.push_back(std::make_unique<ba::ml::MlpClassifier>(o));
    }
    models.push_back(std::make_unique<ba::ml::LinearSvm>());
    models.push_back(std::make_unique<ba::ml::BernoulliNb>());
    models.push_back(std::make_unique<ba::ml::GaussianNb>());
    models.push_back(std::make_unique<ba::ml::Knn>(5));
    models.push_back(std::make_unique<ba::ml::DecisionTree>());
    {
      ba::ml::BoostingOptions o;
      o.num_rounds = 30;
      models.push_back(std::make_unique<ba::ml::Gbdt>(o));
      models.push_back(std::make_unique<ba::ml::XgBoost>(o));
    }
    for (auto& model : models) {
      model->Fit(train_flat);
      row_for("MLs", model->Name()).pooled.Merge(model->Evaluate(test_flat));
    }
  }

  ba::TablePrinter table(
      {"Methods", "Model", "Precision", "Recall", "F1-score"});
  std::string last_group;
  for (const auto& r : rows) {
    if (r.group != last_group && !last_group.empty()) table.AddSeparator();
    const auto macro = r.pooled.MacroAverage();
    table.AddRow({r.group == last_group ? "" : r.group, r.name,
                  ba::TablePrinter::Num(macro.precision),
                  ba::TablePrinter::Num(macro.recall),
                  ba::TablePrinter::Num(r.pooled.WeightedAverage().f1)});
    last_group = r.group;
  }
  table.Print(std::cout,
              "Table II — graph representation models, pooled over " +
                  std::to_string(trials) +
                  " economies (paper: GFN 0.9769 > GCN 0.9514 > DiffPool "
                  "0.9299; GBDT 0.9585 best classical; NB/linear far "
                  "behind)");
  return 0;
}
