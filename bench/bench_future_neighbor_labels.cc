// Future-work experiment #2 (paper §V): using neighbor label
// information.
//
// "Our model only utilizes the topology ... which does not take account
//  into the label information of other nodes. In real-world scenarios,
//  nodes of the same type often cluster together. The accuracy of the
//  classification model can usually be improved by analyzing the types
//  of connected nodes."
//
// Implementation: each address's embedding sequence is augmented with a
// neighbor-label histogram — the distribution of KNOWN (training-set)
// labels among its ledger counterparties — and the LSTM+MLP classifier
// is retrained. Test counterparty labels are looked up only from the
// TRAIN set (transductive but leakage-free). Expected: a measurable F1
// gain, concentrated in the Service/Exchange confusion.

#include <iostream>
#include <unordered_map>
#include <unordered_set>

#include "bench/bench_common.h"
#include "core/aggregator.h"
#include "core/classifier.h"
#include "core/graph_model.h"

namespace {

/// Histogram (fractions) of known labels among `address`'s distinct
/// ledger counterparties.
std::vector<float> NeighborLabelHistogram(
    const ba::chain::Ledger& ledger, ba::chain::AddressId address,
    const std::unordered_map<ba::chain::AddressId, int>& known) {
  std::vector<float> hist(ba::datagen::kNumBehaviors + 1, 0.0f);
  std::unordered_set<ba::chain::AddressId> seen;
  for (ba::chain::TxId txid : ledger.TransactionsOf(address)) {
    const auto& tx = ledger.tx(txid);
    auto touch = [&](ba::chain::AddressId other) {
      if (other == address || !seen.insert(other).second) return;
      auto it = known.find(other);
      if (it == known.end()) {
        hist.back() += 1.0f;  // unknown bucket
      } else {
        hist[static_cast<size_t>(it->second)] += 1.0f;
      }
    };
    for (const auto& in : tx.inputs) touch(in.address);
    for (const auto& out : tx.outputs) touch(out.address);
  }
  float total = 0.0f;
  for (float v : hist) total += v;
  if (total > 0.0f) {
    for (float& v : hist) v /= total;
  }
  return hist;
}

/// Appends `extra` columns to every row of each sequence.
void AugmentSequences(
    const ba::chain::Ledger& ledger,
    const std::vector<ba::core::AddressSample>& samples,
    const std::unordered_map<ba::chain::AddressId, int>& known,
    std::vector<ba::core::EmbeddingSequence>* sequences) {
  for (size_t i = 0; i < sequences->size(); ++i) {
    const auto hist =
        NeighborLabelHistogram(ledger, samples[i].address, known);
    auto& seq = (*sequences)[i].embeddings;
    const int64_t rows = seq.dim(0);
    const int64_t old_cols = seq.dim(1);
    const int64_t extra = static_cast<int64_t>(hist.size());
    ba::tensor::Tensor wider({rows, old_cols + extra});
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < old_cols; ++c) wider.at(r, c) = seq.at(r, c);
      for (int64_t c = 0; c < extra; ++c) {
        wider.at(r, old_cols + c) = hist[static_cast<size_t>(c)];
      }
    }
    seq = std::move(wider);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int trials = static_cast<int>(flags.GetInt("trials", 3));

  ba::metrics::ConfusionMatrix cm_base(ba::datagen::kNumBehaviors);
  ba::metrics::ConfusionMatrix cm_aug(ba::datagen::kNumBehaviors);

  for (int trial = 0; trial < trials; ++trial) {
    std::cout << "--- trial " << trial + 1 << "/" << trials << " ---\n";
    auto exp = ba::bench::BuildExperiment(flags, /*verbose=*/trial == 0,
                                          /*seed_offset=*/100u * trial);
    const auto& ledger = exp.simulator->ledger();

    ba::core::GraphModelOptions gopts;
    gopts.epochs = static_cast<int>(flags.GetInt("gfn_epochs", 25));
    gopts.seed = seed + static_cast<uint64_t>(trial);
    ba::core::GraphModel gfn(gopts);
    gfn.Train(exp.train);

    auto train_seq = ba::core::BuildEmbeddingSequences(gfn, exp.train);
    auto test_seq = ba::core::BuildEmbeddingSequences(gfn, exp.test);
    const auto scaler = ba::core::EmbeddingScaler::Fit(train_seq);
    scaler.Apply(&train_seq);
    scaler.Apply(&test_seq);

    // Known labels = training addresses only (no test leakage).
    std::unordered_map<ba::chain::AddressId, int> known;
    for (const auto& s : exp.train) known[s.address] = s.label;

    auto run = [&](bool augmented) {
      auto tr = train_seq;
      auto te = test_seq;
      int64_t dim = gfn.embed_dim();
      if (augmented) {
        AugmentSequences(ledger, exp.train, known, &tr);
        AugmentSequences(ledger, exp.test, known, &te);
        dim += ba::datagen::kNumBehaviors + 1;
      }
      ba::core::AggregatorOptions opts;
      opts.embed_dim = dim;
      opts.epochs = static_cast<int>(flags.GetInt("clf_epochs", 120));
      opts.seed = seed + static_cast<uint64_t>(trial) + 1;
      ba::core::AggregatorModel agg(opts);
      agg.Train(tr);
      return agg.Evaluate(te);
    };

    const auto base = run(false);
    const auto aug = run(true);
    cm_base.Merge(base);
    cm_aug.Merge(aug);
    std::cout << "[trial] baseline F1 "
              << ba::TablePrinter::Num(base.WeightedAverage().f1)
              << " -> with neighbor labels "
              << ba::TablePrinter::Num(aug.WeightedAverage().f1) << "\n";
  }

  ba::TablePrinter table(
      {"Variant", "Type", "Precision", "Recall", "F1-score"});
  ba::bench::AddPerClassRows(&table, "LSTM+MLP (baseline)", cm_base);
  ba::bench::AddPerClassRows(&table, "LSTM+MLP + neighbor labels", cm_aug);
  table.Print(std::cout,
              "Future-work: neighbor-label augmentation (paper §V \"nodes "
              "of the same type often cluster together\"), pooled over " +
                  std::to_string(trials) + " economies");
  return 0;
}
