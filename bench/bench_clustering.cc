// Clustering-heuristic baseline — the related-work line the paper's
// introduction surveys (Ermilov et al. [18], Kang et al. [19]): cluster
// addresses with the classic on-chain heuristics, label each cluster by
// the majority of its known (training) members, and classify unseen
// addresses by their cluster's label.
//
// Reports: cluster statistics, label purity of multi-member clusters,
// and the cluster-vote classifier's coverage/accuracy vs BAClassifier
// on the same split — quantifying the paper's argument that heuristic
// clustering alone "cannot be used for all bitcoin addresses".

#include <iostream>
#include <unordered_map>

#include "bench/bench_common.h"
#include "chain/clustering.h"
#include "core/classifier.h"

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  auto exp = ba::bench::BuildExperiment(flags);
  const auto& ledger = exp.simulator->ledger();

  for (bool change_heuristic : {false, true}) {
    ba::chain::AddressClusterer::Options copts;
    copts.change_heuristic = change_heuristic;
    const auto clusterer = ba::chain::AddressClusterer::FromLedger(ledger, copts);
    const auto clusters = clusterer.Clusters(/*min_size=*/2);

    // Purity over clusters containing >= 2 labeled addresses.
    std::unordered_map<ba::chain::AddressId, int> truth;
    for (const auto& s : exp.train) truth[s.address] = s.label;
    for (const auto& s : exp.test) truth[s.address] = s.label;
    int64_t pure = 0, mixed = 0, labeled_members = 0;
    for (const auto& members : clusters) {
      std::unordered_map<int, int> votes;
      int64_t with_label = 0;
      for (auto a : members) {
        auto it = truth.find(a);
        if (it != truth.end()) {
          ++votes[it->second];
          ++with_label;
        }
      }
      if (with_label < 2) continue;
      labeled_members += with_label;
      if (votes.size() == 1) {
        ++pure;
      } else {
        ++mixed;
      }
    }

    // Cluster-vote classifier: majority training label per cluster.
    std::unordered_map<ba::chain::AddressId,
                       std::unordered_map<int, int>>
        cluster_votes;
    for (const auto& s : exp.train) {
      ++cluster_votes[clusterer.Find(s.address)][s.label];
    }
    int64_t covered = 0, correct = 0;
    for (const auto& s : exp.test) {
      auto it = cluster_votes.find(clusterer.Find(s.address));
      if (it == cluster_votes.end()) continue;  // no labeled cluster-mate
      ++covered;
      int best_label = -1, best_votes = -1;
      for (const auto& [label, count] : it->second) {
        if (count > best_votes) {
          best_votes = count;
          best_label = label;
        }
      }
      correct += (best_label == s.label);
    }

    std::cout << "\n=== heuristics: common-input"
              << (change_heuristic ? " + change" : "") << " ===\n";
    std::cout << "clusters (>=2 members): " << clusters.size()
              << ", largest " << (clusters.empty() ? 0 : clusters[0].size())
              << " addresses\n";
    std::cout << "label purity over clusters with >=2 labeled members: "
              << pure << " pure / " << mixed << " mixed\n";
    std::cout << "cluster-vote classifier: coverage "
              << ba::TablePrinter::Num(
                     static_cast<double>(covered) /
                         static_cast<double>(exp.test.size()))
              << ", accuracy on covered "
              << ba::TablePrinter::Num(
                     covered ? static_cast<double>(correct) /
                                   static_cast<double>(covered)
                             : 0.0)
              << " (" << covered << "/" << exp.test.size() << " covered)\n";
  }

  // BAClassifier reference on the same split (covers EVERY address).
  ba::core::BaClassifier::Options opts;
  opts.dataset = ba::bench::DatasetOptionsFromFlags(flags);
  opts.graph_model.epochs = static_cast<int>(flags.GetInt("gfn_epochs", 30));
  opts.aggregator.epochs = static_cast<int>(flags.GetInt("clf_epochs", 120));
  ba::core::BaClassifier clf(opts);
  BA_CHECK_OK(clf.TrainOnSamples(exp.train));
  ba::metrics::ConfusionMatrix cm(opts.graph_model.num_classes);
  BA_CHECK_OK(clf.EvaluateSamples(exp.test, &cm));
  std::cout << "\nBAClassifier reference: coverage 1.0000, accuracy "
            << ba::TablePrinter::Num(cm.Accuracy()) << ", weighted F1 "
            << ba::TablePrinter::Num(cm.WeightedAverage().f1) << "\n";
  std::cout << "(the paper's point: heuristic clustering is precise where "
               "it applies but cannot label every address; the classifier "
               "can)\n";
  return 0;
}
