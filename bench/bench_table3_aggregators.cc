// Reproduces Table III: address-classification model comparison.
//
// Per trial (independent economy): a GFN encoder is trained once; its
// frozen per-slice embeddings form each address's chronological
// sequence; six aggregators (LSTM+MLP — the paper's choice — BiLSTM,
// Attention, SUM/AVG/MAX + MLP) are trained identically. Test
// confusions are pooled over `--trials` economies; per-class precision
// / recall / F1 and the weighted average are reported as in the paper.
//
// Paper's shape: LSTM+MLP attains the best weighted F1 (0.9497, with
// BiLSTM within half a point); pooling aggregators trail; Service is
// the hardest class for every model.

#include <iostream>
#include <vector>

#include "bench/bench_common.h"
#include "core/aggregator.h"
#include "core/classifier.h"
#include "core/graph_model.h"

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int trials = static_cast<int>(flags.GetInt("trials", 3));

  auto kinds = ba::core::AllAggregators();
  // Transformer-style self-attention: an extension beyond Table III.
  kinds.push_back(ba::core::AggregatorKind::kSelfAttention);
  std::vector<ba::metrics::ConfusionMatrix> pooled(
      kinds.size(),
      ba::metrics::ConfusionMatrix(ba::datagen::kNumBehaviors));

  for (int trial = 0; trial < trials; ++trial) {
    std::cout << "--- trial " << trial + 1 << "/" << trials << " ---\n";
    auto exp = ba::bench::BuildExperiment(flags, /*verbose=*/trial == 0,
                                          /*seed_offset=*/100u * trial);

    // Shared graph encoder (GFN), trained once per trial.
    ba::core::GraphModelOptions gopts;
    gopts.epochs = static_cast<int>(flags.GetInt("gfn_epochs", 25));
    gopts.k_hops = static_cast<int>(flags.GetInt("khops", 2));
    gopts.seed = seed + static_cast<uint64_t>(trial);
    ba::core::GraphModel gfn(gopts);
    ba::Stopwatch watch;
    watch.Start();
    gfn.Train(exp.train);
    watch.Stop();
    std::cout << "[train] shared GFN encoder: "
              << ba::TablePrinter::Num(watch.ElapsedSeconds(), 1) << "s\n";

    auto train_seq = ba::core::BuildEmbeddingSequences(gfn, exp.train);
    auto test_seq = ba::core::BuildEmbeddingSequences(gfn, exp.test);
    const auto scaler = ba::core::EmbeddingScaler::Fit(train_seq);
    scaler.Apply(&train_seq);
    scaler.Apply(&test_seq);

    for (size_t k = 0; k < kinds.size(); ++k) {
      ba::core::AggregatorOptions opts;
      opts.kind = kinds[k];
      opts.embed_dim = gfn.embed_dim();
      opts.epochs = static_cast<int>(flags.GetInt("clf_epochs", 120));
      opts.seed = seed + static_cast<uint64_t>(trial) + 1;
      ba::core::AggregatorModel agg(opts);
      watch.Reset();
      watch.Start();
      agg.Train(train_seq);
      watch.Stop();
      const auto cm = agg.Evaluate(test_seq);
      pooled[k].Merge(cm);
      std::cout << "[train] " << ba::core::AggregatorName(kinds[k]) << ": "
                << ba::TablePrinter::Num(watch.ElapsedSeconds(), 1)
                << "s, weighted F1 "
                << ba::TablePrinter::Num(cm.WeightedAverage().f1) << "\n";
    }
  }

  ba::TablePrinter table(
      {"Model", "Type", "Precision", "Recall", "F1-score"});
  for (size_t k = 0; k < kinds.size(); ++k) {
    std::string name = ba::core::AggregatorName(kinds[k]);
    if (kinds[k] == ba::core::AggregatorKind::kLstm) name += " (ours)";
    if (kinds[k] == ba::core::AggregatorKind::kSelfAttention) {
      name += " (extension)";
    }
    ba::bench::AddPerClassRows(&table, name, pooled[k]);
  }
  table.Print(std::cout,
              "Table III — address classification models on frozen GFN "
              "embeddings, pooled over " +
                  std::to_string(trials) +
                  " economies (paper: LSTM+MLP weighted F1 0.9497 best; "
                  "Service hardest class everywhere)");
  return 0;
}
