// Reproduces Table V: runtime overhead of the four graph-construction
// stages (single-core CPU time, averaged per address).
//
// Paper: Stage 1 (extraction) 0.19s / 4.38%, Stage 2 (single-tx
// compression) 0.63s / 14.52%, Stage 3 (multi-tx compression) 2.71s /
// 62.44%, Stage 4 (augmentation) 0.81s / 18.66%; total 4.34s. Absolute
// times scale with address history size; the shape to reproduce is
// Stage 3 dominating.

#include <iostream>

#include "bench/bench_common.h"
#include "core/graph_builder.h"

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  auto config = ba::bench::ScenarioFromFlags(flags);
  // Table V measures the cost profile in the paper's regime: mining
  // pools paying out to hundreds of addresses per transaction, which is
  // exactly what makes the all-pairs similarity of Stage 3 dominate.
  config.miners_per_pool = static_cast<int>(flags.GetInt("miners", 250));
  config.pool_payout_interval_blocks = 10;
  ba::datagen::Simulator simulator(config);
  BA_CHECK_OK(simulator.Run());

  auto labeled = simulator.CollectLabeledAddresses(/*min_txs=*/3);
  ba::Rng rng(config.seed);
  labeled = ba::datagen::StratifiedSample(
      labeled, flags.GetInt("addresses", 400), &rng);

  ba::core::GraphConstructorOptions opts;
  opts.slice_size = static_cast<int>(flags.GetInt("slice", 100));
  opts.similarity_threshold = flags.GetDouble("psi", 0.5);
  ba::core::GraphConstructor constructor(opts);

  int64_t total_graphs = 0;
  for (const auto& a : labeled) {
    total_graphs += static_cast<int64_t>(
        constructor.BuildGraphs(simulator.ledger(), a.address).size());
  }

  const ba::core::StageTimings& t = constructor.timings();
  const double n = static_cast<double>(labeled.size());
  const double total = t.TotalSeconds();
  const double stages[4] = {t.extract_seconds, t.single_compress_seconds,
                            t.multi_compress_seconds, t.augment_seconds};
  const char* stage_names[4] = {
      "Stage 1 (original graph extraction)",
      "Stage 2 (single-tx compression)",
      "Stage 3 (multi-tx compression)",
      "Stage 4 (structure augmentation)"};
  const double paper_seconds[4] = {0.19, 0.63, 2.71, 0.81};
  const double paper_ratio[4] = {4.38, 14.52, 62.44, 18.66};

  ba::TablePrinter table({"Metrics", "CPU time / address", "Ratio (ours)",
                          "Paper time", "Paper ratio"});
  for (int s = 0; s < 4; ++s) {
    table.AddRow({stage_names[s],
                  ba::TablePrinter::Num(stages[s] / n * 1e3, 3) + " ms",
                  ba::TablePrinter::Num(stages[s] / total * 100.0, 2) + "%",
                  ba::TablePrinter::Num(paper_seconds[s], 2) + " s",
                  ba::TablePrinter::Num(paper_ratio[s], 2) + "%"});
  }
  table.AddSeparator();
  table.AddRow({"Total", ba::TablePrinter::Num(total / n * 1e3, 3) + " ms",
                "100%", "4.34 s", "100%"});
  table.Print(std::cout,
              "Table V — per-stage graph construction cost over " +
                  std::to_string(labeled.size()) + " addresses (" +
                  std::to_string(total_graphs) +
                  " graphs); paper shape: Stage 3 dominates");
  return 0;
}
