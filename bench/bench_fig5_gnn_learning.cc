// Reproduces Fig 5: learning-efficiency comparison of the graph
// representation models (GFN vs GCN vs DiffPool).
//
// Left panel: test weighted F1 per training epoch. Right panel: test
// weighted F1 against cumulative training wall-clock. Paper's shape:
// GFN dominates at every epoch AND at every time budget — its
// structure-free MLP trains faster per epoch than message-passing GCN.

#include <algorithm>
#include <iostream>

#include "bench/bench_common.h"
#include "core/graph_model.h"

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  auto exp = ba::bench::BuildExperiment(flags);
  const int epochs = static_cast<int>(flags.GetInt("epochs", 24));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  struct Curve {
    std::string name;
    std::vector<ba::core::EpochStat> history;
  };
  std::vector<Curve> curves;
  for (auto kind : {ba::core::GraphEncoderKind::kGfn,
                    ba::core::GraphEncoderKind::kGcn,
                    ba::core::GraphEncoderKind::kDiffPool}) {
    ba::core::GraphModelOptions opts;
    opts.encoder = kind;
    opts.epochs = epochs;
    opts.k_hops = static_cast<int>(flags.GetInt("khops", 2));
    opts.seed = seed;
    ba::core::GraphModel model(opts);
    Curve curve{ba::core::GraphEncoderName(kind), {}};
    model.Train(exp.train, &exp.test, &curve.history);
    std::cout << "[train] " << curve.name << " done ("
              << ba::TablePrinter::Num(curve.history.back().seconds, 1)
              << "s training time)\n";
    curves.push_back(std::move(curve));
  }

  ba::TablePrinter by_epoch({"Epoch", "GFN F1", "GCN F1", "DiffPool F1"});
  for (int e = 0; e < epochs; ++e) {
    by_epoch.AddRow(
        {std::to_string(e + 1),
         ba::TablePrinter::Num(curves[0].history[static_cast<size_t>(e)].eval_f1),
         ba::TablePrinter::Num(curves[1].history[static_cast<size_t>(e)].eval_f1),
         ba::TablePrinter::Num(curves[2].history[static_cast<size_t>(e)].eval_f1)});
  }
  by_epoch.Print(std::cout,
                 "Fig 5 (left) — test weighted F1 vs training epoch "
                 "(paper shape: GFN above GCN above DiffPool throughout)");

  ba::TablePrinter by_time(
      {"Model", "Epoch", "Cumulative seconds", "Test F1"});
  for (const auto& c : curves) {
    for (const auto& stat : c.history) {
      by_time.AddRow({c.name, std::to_string(stat.epoch),
                      ba::TablePrinter::Num(stat.seconds, 2),
                      ba::TablePrinter::Num(stat.eval_f1)});
    }
    by_time.AddSeparator();
  }
  by_time.Print(std::cout,
                "Fig 5 (right) — test weighted F1 vs cumulative training "
                "time (paper shape: GFN reaches a given F1 sooner)");

  // Summary: best F1 attainable within shared wall-clock budgets (the
  // reading of the paper's right panel: "after X minutes of training,
  // who is ahead?").
  double max_time = 0.0;
  for (const auto& c : curves) {
    max_time = std::max(max_time, c.history.back().seconds);
  }
  const double budgets[] = {0.25 * max_time, 0.5 * max_time, max_time};
  ba::TablePrinter summary({"Model", "Final F1", "Seconds/epoch",
                            "Best F1 @25% time", "@50% time", "@100% time"});
  for (const auto& c : curves) {
    std::vector<std::string> row{
        c.name, ba::TablePrinter::Num(c.history.back().eval_f1),
        ba::TablePrinter::Num(c.history.back().seconds / epochs, 3)};
    for (double budget : budgets) {
      double best = 0.0;
      for (const auto& stat : c.history) {
        if (stat.seconds <= budget) best = std::max(best, stat.eval_f1);
      }
      row.push_back(ba::TablePrinter::Num(best));
    }
    summary.AddRow(row);
  }
  summary.Print(std::cout,
                "Fig 5 summary — best test F1 within shared time budgets");
  return 0;
}
