// Reproduces Table I: dataset label statistics.
//
// The paper's crawl yields 2,138,657 addresses (Exchange 912,322 /
// Mining 133,119 / Gambling 377,559 / Service 715,657). This harness
// runs the behavioral economy and reports the synthetic dataset's label
// counts and proportions next to the paper's.

#include <iostream>

#include "bench/bench_common.h"

namespace {

// Paper Table I reference counts.
constexpr int64_t kPaperCounts[] = {912'322, 133'119, 377'559, 715'657};
constexpr int64_t kPaperTotal = 2'138'657;

}  // namespace

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  const auto config = ba::bench::ScenarioFromFlags(flags);
  ba::datagen::Simulator simulator(config);
  BA_CHECK_OK(simulator.Run());

  const auto labeled = simulator.CollectLabeledAddresses(/*min_txs=*/2);
  const auto counts = ba::datagen::CountByLabel(labeled);
  const int64_t total = static_cast<int64_t>(labeled.size());

  ba::TablePrinter table({"Address Label", "Number (ours)", "Share (ours)",
                          "Number (paper)", "Share (paper)"});
  const auto names = ba::datagen::BehaviorNames();
  for (int c = 0; c < ba::datagen::kNumBehaviors; ++c) {
    table.AddRow(
        {names[static_cast<size_t>(c)],
         ba::TablePrinter::Count(counts[static_cast<size_t>(c)]),
         ba::TablePrinter::Num(
             static_cast<double>(counts[static_cast<size_t>(c)]) /
                 static_cast<double>(total),
             3),
         ba::TablePrinter::Count(kPaperCounts[c]),
         ba::TablePrinter::Num(static_cast<double>(kPaperCounts[c]) /
                                   static_cast<double>(kPaperTotal),
                               3)});
  }
  table.AddSeparator();
  table.AddRow({"Total", ba::TablePrinter::Count(total), "1.000",
                ba::TablePrinter::Count(kPaperTotal), "1.000"});
  table.Print(std::cout,
              "Table I — dataset label statistics (synthetic economy vs "
              "paper crawl; absolute scale differs by design, every class "
              "is populated and Exchange dominates)");

  std::cout << "\nledger: " << simulator.ledger().num_transactions()
            << " transactions across " << simulator.ledger().height()
            << " blocks, " << simulator.ledger().num_addresses()
            << " total addresses, " << labeled.size()
            << " labeled (>=2 transactions)\n";
  return 0;
}
