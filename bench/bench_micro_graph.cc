// Micro-benchmarks (google-benchmark) for the hot kernels: SFE,
// centrality measures, sparse products, normalized adjacency, and the
// individual construction stages on a fixed economy.

#include <benchmark/benchmark.h>

#include "chain/ledger.h"
#include "core/gfn_features.h"
#include "core/graph_builder.h"
#include "core/sfe.h"
#include "datagen/simulator.h"
#include "graph/centrality.h"
#include "graph/sparse_matrix.h"
#include "util/rng.h"

namespace {

std::vector<double> RandomValues(int64_t n, uint64_t seed) {
  ba::Rng rng(seed);
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = rng.LogNormal(0.0, 1.0);
  return v;
}

void BM_Sfe(benchmark::State& state) {
  const auto values = RandomValues(state.range(0), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ba::core::ComputeCompressedSfe(values));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sfe)->Arg(16)->Arg(256)->Arg(4096);

ba::graph::AdjacencyList RandomGraph(int64_t n, int64_t edges,
                                     uint64_t seed) {
  ba::Rng rng(seed);
  ba::graph::AdjacencyList g(n);
  for (int64_t e = 0; e < edges; ++e) {
    g.AddEdge(static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n))),
              static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n))));
  }
  return g;
}

void BM_Betweenness(benchmark::State& state) {
  const auto g = RandomGraph(state.range(0), state.range(0) * 3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ba::graph::BetweennessCentrality(g));
  }
}
BENCHMARK(BM_Betweenness)->Arg(64)->Arg(256)->Arg(512);

void BM_Closeness(benchmark::State& state) {
  const auto g = RandomGraph(state.range(0), state.range(0) * 3, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ba::graph::ClosenessCentrality(g));
  }
}
BENCHMARK(BM_Closeness)->Arg(64)->Arg(256)->Arg(512);

void BM_PageRank(benchmark::State& state) {
  const auto g = RandomGraph(state.range(0), state.range(0) * 3, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ba::graph::PageRank(g));
  }
}
BENCHMARK(BM_PageRank)->Arg(256)->Arg(2048);

void BM_SparseSimilarity(benchmark::State& state) {
  // S = A·Aᵀ on an incidence pattern like Eq. 3's.
  ba::Rng rng(5);
  const int64_t n = state.range(0), d = state.range(0) / 2;
  std::vector<ba::graph::Triplet> triplets;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t k = 2 + static_cast<int64_t>(rng.UniformInt(6));
    for (int64_t j = 0; j < k; ++j) {
      triplets.push_back(
          {i, static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(d))),
           1.0f});
    }
  }
  const auto a = ba::graph::SparseMatrix::FromTriplets(n, d, triplets);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Multiply(a.Transpose()));
  }
}
BENCHMARK(BM_SparseSimilarity)->Arg(128)->Arg(512)->Arg(1024);

void BM_SpmmDense(benchmark::State& state) {
  ba::Rng rng(6);
  const int64_t n = state.range(0);
  const auto g = RandomGraph(n, n * 4, 7);
  const auto norm = ba::graph::NormalizedAdjacency(g);
  std::vector<float> x(static_cast<size_t>(n) * 23);
  for (auto& v : x) v = static_cast<float>(rng.Gaussian());
  std::vector<float> y(x.size());
  for (auto _ : state) {
    norm.MultiplyDense(x.data(), 23, y.data());
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SpmmDense)->Arg(256)->Arg(2048);

/// Fixture economy shared by the stage benchmarks.
class StageFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (simulator) return;
    ba::datagen::ScenarioConfig config;
    config.seed = 42;
    config.num_blocks = 200;
    config.miners_per_pool = 40;
    simulator = std::make_unique<ba::datagen::Simulator>(config);
    BA_CHECK_OK(simulator->Run());
    const auto labeled = simulator->CollectLabeledAddresses(3);
    // A busy mining-pool address exercises the worst-case path.
    size_t busiest = 0;
    for (size_t i = 0; i < labeled.size(); ++i) {
      if (simulator->ledger().TransactionsOf(labeled[i].address).size() >
          simulator->ledger().TransactionsOf(labeled[busiest].address)
              .size()) {
        busiest = i;
      }
    }
    address = labeled[busiest].address;
  }

  static std::unique_ptr<ba::datagen::Simulator> simulator;
  static ba::chain::AddressId address;
};

std::unique_ptr<ba::datagen::Simulator> StageFixture::simulator;
ba::chain::AddressId StageFixture::address = 0;

BENCHMARK_F(StageFixture, FullConstruction)(benchmark::State& state) {
  for (auto _ : state) {
    ba::core::GraphConstructor constructor;
    benchmark::DoNotOptimize(
        constructor.BuildGraphs(simulator->ledger(), address));
  }
}

BENCHMARK_F(StageFixture, ExtractionOnly)(benchmark::State& state) {
  ba::core::GraphConstructor constructor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        constructor.ExtractOriginalGraphs(simulator->ledger(), address));
  }
}

BENCHMARK_F(StageFixture, TensorPreparation)(benchmark::State& state) {
  ba::core::GraphConstructor constructor;
  auto graphs = constructor.BuildGraphs(simulator->ledger(), address);
  for (auto _ : state) {
    for (const auto& g : graphs) {
      benchmark::DoNotOptimize(ba::core::PrepareGraphTensors(g, 2));
    }
  }
}

}  // namespace

BENCHMARK_MAIN();
