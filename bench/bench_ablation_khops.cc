// Ablation A3: GFN propagation depth k of the feature augmentation
// X^G = [d, X, ÃX, …, ÃᵏX] (Eq. 13). Sweeps k and reports graph-level
// F1, augmented feature width and training cost — quantifying how much
// multi-hop structure the precomputed propagation contributes.

#include <iostream>

#include "bench/bench_common.h"
#include "core/graph_model.h"

int main(int argc, char** argv) {
  ba::CliFlags flags(argc, argv);
  const auto config = ba::bench::ScenarioFromFlags(flags);
  ba::datagen::Simulator simulator(config);
  BA_CHECK_OK(simulator.Run());
  auto labeled = simulator.CollectLabeledAddresses(/*min_txs=*/3);
  ba::Rng rng(config.seed ^ 0xBEEF);
  labeled = ba::datagen::StratifiedSample(
      labeled, flags.GetInt("addresses", 500), &rng);
  const auto split = ba::datagen::StratifiedSplit(labeled, 0.8, &rng);

  ba::TablePrinter table({"k (hops)", "Feature width", "Train s",
                          "Graph-level F1"});
  for (int k : {0, 1, 2, 3, 4}) {
    ba::core::GraphDatasetOptions dopts;
    dopts.k_hops = k;
    ba::core::GraphDatasetBuilder builder(dopts);
    const auto train = builder.Build(simulator.ledger(), split.train);
    const auto test = builder.Build(simulator.ledger(), split.test);

    ba::core::GraphModelOptions opts;
    opts.k_hops = k;
    opts.epochs = static_cast<int>(flags.GetInt("epochs", 25));
    opts.seed = config.seed;
    ba::core::GraphModel model(opts);
    ba::Stopwatch watch;
    watch.Start();
    model.Train(train);
    watch.Stop();
    const auto cm = model.EvaluateGraphLevel(test);
    table.AddRow({std::to_string(k),
                  std::to_string(ba::core::AugmentedDim(k)),
                  ba::TablePrinter::Num(watch.ElapsedSeconds(), 1),
                  ba::TablePrinter::Num(cm.WeightedAverage().f1)});
    std::cout << "[done] k=" << k << "\n";
  }
  table.Print(std::cout,
              "Ablation A3 — GFN propagation depth k (expected: k>=1 "
              "beats k=0; diminishing or negative returns at large k)");
  return 0;
}
